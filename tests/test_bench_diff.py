"""Tests for the perf-regression gate: bench-diff and ``repro profile``."""

import json

import pytest

from repro.cli import main
from repro.errors import DatasetError
from repro.obs.benchdiff import (
    diff_files,
    diff_metrics,
    load_metrics,
    metric_direction,
)


class TestMetricDirection:
    def test_costs_are_lower_is_better(self):
        for name in ("wall_seconds", "phase.engine.decision.cpu_seconds",
                     "counter.engine.messages", "mem_peak_bytes"):
            assert metric_direction(name) == "lower"

    def test_benefits_are_higher_is_better(self):
        for name in ("speedup_vs_sequential", "serve.query_qps",
                     "coverage", "cache.hit_rate", "ingest.accepted"):
            assert metric_direction(name) == "higher"


class TestDiffMetrics:
    def test_identical_runs_have_no_regressions(self):
        metrics = {"wall_seconds": 2.0, "counter.engine.messages": 100}
        diff = diff_metrics(metrics, dict(metrics))
        assert diff.exit_code == 0
        assert not diff.regressions
        assert not diff.improvements
        assert len(diff.deltas) == 2

    def test_twenty_percent_cost_growth_regresses(self):
        diff = diff_metrics({"wall_seconds": 1.0}, {"wall_seconds": 1.25})
        assert diff.exit_code == 1
        assert diff.regressions[0].name == "wall_seconds"
        assert diff.regressions[0].change_pct == pytest.approx(25.0)

    def test_shrinking_benefit_regresses(self):
        diff = diff_metrics({"speedup": 4.0}, {"speedup": 2.0})
        assert diff.exit_code == 1

    def test_growing_benefit_improves(self):
        diff = diff_metrics({"speedup": 2.0}, {"speedup": 4.0})
        assert diff.exit_code == 0
        assert diff.improvements[0].name == "speedup"

    def test_change_within_threshold_is_ok(self):
        diff = diff_metrics({"wall_seconds": 1.0}, {"wall_seconds": 1.1})
        assert diff.exit_code == 0
        assert not diff.regressions

    def test_per_metric_threshold_override(self):
        base = {"counter.engine.messages": 100}
        current = {"counter.engine.messages": 101}
        strict = diff_metrics(
            base, current, thresholds={"counter.engine.messages": 0.0}
        )
        assert strict.exit_code == 1
        default = diff_metrics(base, current)
        assert default.exit_code == 0

    def test_skip_globs_exclude_metrics(self):
        diff = diff_metrics(
            {"wall_seconds": 1.0, "counter.x": 5},
            {"wall_seconds": 99.0, "counter.x": 5},
            skip=["*seconds*"],
        )
        assert diff.exit_code == 0
        assert diff.skipped == ["wall_seconds"]

    def test_missing_and_added_are_bookkept_not_failed(self):
        diff = diff_metrics({"old": 1.0}, {"new": 2.0})
        assert diff.missing == ["old"]
        assert diff.added == ["new"]
        assert diff.exit_code == 0

    def test_zero_base_nonzero_current_is_infinite_regression(self):
        diff = diff_metrics({"errors": 0.0}, {"errors": 3.0})
        assert diff.exit_code == 1
        assert diff.deltas[0].change_pct == float("inf")

    def test_zero_base_zero_current_is_ok(self):
        diff = diff_metrics({"errors": 0.0}, {"errors": 0.0})
        assert diff.exit_code == 0

    def test_render_and_to_json(self):
        diff = diff_metrics({"wall_seconds": 1.0}, {"wall_seconds": 2.0})
        text = diff.render()
        assert "REGRESSED" in text
        assert "1 regression(s)" in text
        payload = json.loads(diff.to_json())
        assert payload["regressions"] == ["wall_seconds"]
        assert payload["exit_code"] == 1


class TestLoadMetrics:
    def test_loads_flat_numeric_metrics(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({
            "metrics": {"wall_seconds": 1.5, "note": "text", "n": 3},
            "meta": {"git_sha": "abc"},
        }))
        metrics, meta = load_metrics(path)
        assert metrics == {"wall_seconds": 1.5, "n": 3.0}
        assert meta["git_sha"] == "abc"

    def test_missing_file_raises_dataset_error(self, tmp_path):
        with pytest.raises(DatasetError):
            load_metrics(tmp_path / "nope.json")

    def test_invalid_json_raises_dataset_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(DatasetError):
            load_metrics(path)

    def test_document_without_metrics_raises(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"rows": []}))
        with pytest.raises(DatasetError):
            load_metrics(path)

    def test_diff_files_end_to_end(self, tmp_path):
        base = tmp_path / "base.json"
        current = tmp_path / "current.json"
        base.write_text(json.dumps({"metrics": {"wall_seconds": 1.0}}))
        current.write_text(json.dumps({"metrics": {"wall_seconds": 1.3}}))
        assert diff_files(base, current).exit_code == 1


@pytest.fixture(scope="module")
def dump_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("profile") / "snapshot.dump"
    assert main([
        "synthesize", "--seed", "5", "--scale", "0.15", "--points", "8",
        "--out", str(path),
    ]) == 0
    return path


@pytest.fixture(scope="module")
def profile_json(dump_file, tmp_path_factory):
    """One profiled refine run, shared by the CLI-gate tests below."""
    out = tmp_path_factory.mktemp("profile-out")
    profile_path = out / "PROFILE.json"
    folded_path = out / "stacks.folded"
    code = main([
        "profile", "refine", str(dump_file),
        "--out", str(profile_path), "--folded", str(folded_path),
        "--sample-interval", "0.002",
    ])
    assert code == 0
    return profile_path, folded_path


class TestProfileCommand:
    def test_writes_versioned_profile_with_high_coverage(self, profile_json):
        profile_path, _ = profile_json
        document = json.loads(profile_path.read_text())
        assert document["schema"] == 1
        assert document["workload"]["name"] == "refine"
        # the acceptance bar: named phases own >= 90% of the wall-clock
        assert document["coverage"] >= 0.90
        assert "engine.decision" in document["phases"]
        assert "parse" in document["phases"]
        assert document["metrics"]["counter.engine.messages"] > 0

    def test_folded_file_is_valid_collapsed_stacks(self, profile_json):
        _, folded_path = profile_json
        lines = folded_path.read_text().splitlines()
        assert lines
        for line in lines:
            stack, _, count = line.rpartition(" ")
            assert int(count) >= 1
            assert all(":" in frame for frame in stack.split(";"))

    def test_sampling_summary_recorded(self, profile_json):
        profile_path, folded_path = profile_json
        document = json.loads(profile_path.read_text())
        assert document["sampling"]["samples"] > 0
        assert document["sampling"]["folded"] == str(folded_path)

    def test_unreadable_dump_exits_4(self, tmp_path, capsys):
        code = main([
            "profile", "refine", str(tmp_path / "missing.dump"),
            "--out", str(tmp_path / "PROFILE.json"),
        ])
        assert code == 4
        assert "error" in capsys.readouterr().err


class TestBenchDiffCommand:
    def test_identical_run_exits_0(self, profile_json, capsys):
        profile_path, _ = profile_json
        code = main(["bench-diff", str(profile_path), str(profile_path)])
        assert code == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_injected_regression_exits_1(self, profile_json, tmp_path, capsys):
        profile_path, _ = profile_json
        document = json.loads(profile_path.read_text())
        document["metrics"]["counter.engine.messages"] = (
            document["metrics"]["counter.engine.messages"] * 1.25
        )
        regressed = tmp_path / "regressed.json"
        regressed.write_text(json.dumps(document))
        code = main(["bench-diff", str(profile_path), str(regressed)])
        assert code == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out
        assert "counter.engine.messages" in out

    def test_skip_and_threshold_flags(self, profile_json, tmp_path):
        profile_path, _ = profile_json
        document = json.loads(profile_path.read_text())
        document["metrics"]["wall_seconds"] *= 10
        slower = tmp_path / "slower.json"
        slower.write_text(json.dumps(document))
        assert main(["bench-diff", str(profile_path), str(slower)]) == 1
        assert main([
            "bench-diff", str(profile_path), str(slower),
            "--skip", "*seconds*", "--skip", "coverage",
        ]) == 0

    def test_json_output(self, profile_json, capsys):
        profile_path, _ = profile_json
        code = main([
            "bench-diff", str(profile_path), str(profile_path), "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["exit_code"] == 0

    def test_bad_threshold_spec_is_usage_error(self, profile_json, capsys):
        profile_path, _ = profile_json
        assert main([
            "bench-diff", str(profile_path), str(profile_path),
            "--threshold", "nonsense",
        ]) == 2
        assert main([
            "bench-diff", str(profile_path), str(profile_path),
            "--threshold", "wall_seconds=abc",
        ]) == 2

    def test_missing_document_exits_4(self, tmp_path, capsys):
        assert main([
            "bench-diff", str(tmp_path / "a.json"), str(tmp_path / "b.json"),
        ]) == 4
