"""End-to-end lint coverage over real (CAIDA as-rel) ingested data.

Drives the checked-in ``tests/fixtures/sample.as-rel`` fixture through
the same code paths a real CAIDA snapshot takes: CLI ingest, model
construction with Gao-Rexford policies, certification against the
relationship map, and certificate-store persistence.
"""

import json
from pathlib import Path

from repro.analysis import CertificateStore, certify_network
from repro.cbgp.export import export_network
from repro.cli import main
from repro.core.build import build_relationship_model
from repro.data.caida import read_as_rel
from repro.relationships.policies import TAG_FROM_PROVIDER

FIXTURE = Path(__file__).parent / "fixtures" / "sample.as-rel"


def ingested():
    return read_as_rel(FIXTURE)


class TestIngestCli:
    def test_ingest_as_rel_fixture_succeeds(self, capsys):
        code = main(["ingest", str(FIXTURE), "--format", "as-rel"])
        out = capsys.readouterr().out
        assert code == 0
        assert "accepted:    12" in out
        assert "quarantined: 1" in out

    def test_ingest_report_accounts_for_the_malformed_line(self, tmp_path):
        report_path = tmp_path / "report.json"
        code = main([
            "ingest", str(FIXTURE), "--format", "as-rel",
            "--report", str(report_path), "--json",
        ])
        assert code == 0
        report = json.loads(report_path.read_text())
        assert report["accepted"] == 12
        assert report["total_quarantined"] == 1


class TestRelationshipModel:
    def test_model_covers_every_ingested_as(self):
        result = ingested()
        model = build_relationship_model(result.graph, result.relationships)
        assert set(model.network.ases) == set(result.graph.ases())
        assert len(model.prefix_by_origin) == result.graph.num_ases()

    def test_ingested_model_certifies_clean(self):
        result = ingested()
        model = build_relationship_model(result.graph, result.relationships)
        store = certify_network(
            model.network, relationships=result.relationships
        )
        report = store.report()
        assert report.errors == []
        assert "gao" in report.passes

    def test_store_round_trips_with_identical_fingerprints(self, tmp_path):
        result = ingested()
        model = build_relationship_model(result.graph, result.relationships)
        store = certify_network(
            model.network, relationships=result.relationships
        )
        path = tmp_path / "real.certs"
        store.save(path)
        loaded = CertificateStore.load(
            path, relationships=result.relationships
        )
        assert loaded.store_fingerprint() == store.store_fingerprint()
        assert {
            key: cert.fingerprint for key, cert in loaded.certificates.items()
        } == {
            key: cert.fingerprint for key, cert in store.certificates.items()
        }
        loaded.certify(model.network)
        assert loaded.last_stats.misses == 0
        assert loaded.store_fingerprint() == store.store_fingerprint()


class TestLintCliWithRelationships:
    def _saved_model(self, tmp_path, sabotage=False):
        result = ingested()
        model = build_relationship_model(result.graph, result.relationships)
        if sabotage:
            # strip one provider-route export deny: a valley the gao pass
            # must catch from the saved config + relationship file alone
            session = next(
                s for s in model.network.ebgp_sessions()
                if s.export_map is not None and s.export_map.remove_if(
                    lambda c: c.match.community == TAG_FROM_PROVIDER
                )
            )
            assert session is not None
        path = tmp_path / ("broken.cfg" if sabotage else "model.cfg")
        with open(path, "w", encoding="ascii") as handle:
            export_network(model.network, handle)
        return path

    def test_clean_ingested_model_lints_clean(self, tmp_path, capsys):
        path = self._saved_model(tmp_path)
        code = main(["lint", str(path),
                     "--relationships", str(FIXTURE)])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 errors" in out

    def test_missing_export_deny_is_a_gao_error(self, tmp_path, capsys):
        path = self._saved_model(tmp_path, sabotage=True)
        code = main(["lint", str(path),
                     "--relationships", str(FIXTURE)])
        out = capsys.readouterr().out
        assert code == 1
        assert "gao-valley-export" in out

    def test_unreadable_relationship_file_is_a_data_error(self, tmp_path,
                                                          capsys):
        path = self._saved_model(tmp_path)
        code = main(["lint", str(path),
                     "--relationships", str(tmp_path / "missing.as-rel")])
        assert code == 4
        assert "error" in capsys.readouterr().err
