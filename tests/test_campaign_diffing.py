"""Tests for the campaign path-map diff and the shared diff helpers."""

from repro.campaign import ScenarioDiff, diff_path_maps
from repro.diffutil import multiset_diff, truncate_ranked


class TestMultisetDiff:
    def test_disjoint_sets(self):
        added, removed, unchanged = multiset_diff(["a", "b"], ["c"])
        assert added == ["c"]
        assert removed == ["a", "b"]
        assert unchanged == 0

    def test_multiset_pairing_counts_duplicates(self):
        # Two "a" in base, one in current: exactly one removal survives.
        added, removed, unchanged = multiset_diff(["a", "a"], ["a"])
        assert added == []
        assert removed == ["a"]
        assert unchanged == 1

    def test_key_function_pairs_unequal_objects(self):
        base = [(1, "x"), (2, "y")]
        current = [(1, "z"), (3, "w")]
        added, removed, unchanged = multiset_diff(
            base, current, key=lambda item: item[0]
        )
        assert added == [(3, "w")]
        assert removed == [(2, "y")]
        assert unchanged == 1

    def test_order_preserved(self):
        added, removed, _ = multiset_diff([3, 1, 2], [5, 4])
        assert added == [5, 4]  # current order
        assert removed == [3, 1, 2]  # base order


class TestTruncateRanked:
    def test_no_limit_returns_everything(self):
        lines = [f"line {i}" for i in range(5)]
        assert truncate_ranked(lines, None) == lines

    def test_limit_appends_omission_count(self):
        lines = [f"line {i}" for i in range(5)]
        out = truncate_ranked(lines, 2, "scenarios")
        assert out[:2] == lines[:2]
        assert out[2] == "... 3 more scenarios omitted"

    def test_limit_covering_everything_adds_nothing(self):
        lines = ["a", "b"]
        assert truncate_ranked(lines, 2) == lines


class TestDiffPathMaps:
    BASE = {
        (1, 10): (("10", "a"), ("10", "b")),
        (2, 10): (("10", "c"),),
        (3, 10): (("10", "d"),),
    }

    def test_identical_maps_diff_empty(self):
        diff = diff_path_maps(self.BASE, {k: set(v) for k, v in self.BASE.items()})
        assert diff.changed == ()
        assert diff.lost == ()
        assert diff.gained == ()
        assert diff.blast_radius == 0
        assert diff.diversity_delta == 0
        assert diff.unchanged_pairs == 3

    def test_lost_changed_gained_classified(self):
        current = {
            (1, 10): {("10", "a")},  # changed: one path dropped
            # (2, 10) gone entirely: lost
            (3, 10): {("10", "d")},  # unchanged
            (4, 10): {("10", "e")},  # gained
        }
        diff = diff_path_maps(self.BASE, current)
        assert diff.changed == ((1, 10),)
        assert diff.lost == ((2, 10),)
        assert diff.gained == ((4, 10),)
        assert diff.blast_radius == 3
        assert diff.paths_removed == 2  # one from (1,10), one from (2,10)
        assert diff.paths_added == 1
        assert diff.diversity_delta == -1

    def test_excluded_origins_never_reported(self):
        diff = diff_path_maps(self.BASE, {}, exclude_origins={1, 2, 3})
        assert diff.lost == ()
        assert diff.blast_radius == 0

    def test_to_dict_is_json_ready(self):
        diff = diff_path_maps(self.BASE, {})
        doc = diff.to_dict()
        assert doc["lost"] == [[1, 10], [2, 10], [3, 10]]
        assert doc["diversity_delta"] == -4
        assert isinstance(doc["blast_radius"], int)

    def test_deterministic_pair_order(self):
        current = {(pair): set() for pair in self.BASE}
        diff = diff_path_maps(self.BASE, current)
        assert diff.lost == tuple(sorted(self.BASE))

    def test_scenario_diff_is_frozen(self):
        diff = ScenarioDiff((), (), (), 0, 0, 0)
        assert diff.blast_radius == 0
