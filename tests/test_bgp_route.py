"""Unit tests for the Route value object."""

from repro.bgp.attributes import DEFAULT_LOCAL_PREF, DEFAULT_MED, Origin, RouteSource
from repro.bgp.route import Route
from repro.net.prefix import Prefix

P = Prefix("10.0.0.0/24")


class TestConstruction:
    def test_defaults(self):
        route = Route(P)
        assert route.local_pref == DEFAULT_LOCAL_PREF
        assert route.med == DEFAULT_MED
        assert route.origin is Origin.IGP
        assert route.source is RouteSource.EBGP
        assert route.communities == frozenset()

    def test_originate(self):
        route = Route.originate(P, 0x50001)
        assert route.source is RouteSource.LOCAL
        assert route.as_path == ()
        assert route.next_hop == 0x50001
        assert route.peer_router == 0


class TestReplace:
    def test_replace_changes_only_named_fields(self):
        route = Route(P, as_path=(1, 2), med=5, peer_asn=9)
        clone = route.replace(med=7)
        assert clone.med == 7
        assert clone.as_path == (1, 2)
        assert clone.peer_asn == 9
        assert route.med == 5  # original untouched

    def test_replace_returns_new_object(self):
        route = Route(P)
        assert route.replace(med=1) is not route


class TestAttributesEqual:
    def test_equal_announcements(self):
        a = Route(P, as_path=(1, 2), med=3)
        b = Route(P, as_path=(1, 2), med=3, peer_router=99)
        # peer bookkeeping is not part of the announcement
        assert a.attributes_equal(b)

    def test_none_never_equal(self):
        assert not Route(P).attributes_equal(None)

    def test_path_difference_detected(self):
        assert not Route(P, as_path=(1,)).attributes_equal(Route(P, as_path=(2,)))

    def test_med_and_lp_differences_detected(self):
        assert not Route(P, med=1).attributes_equal(Route(P, med=2))
        assert not Route(P, local_pref=90).attributes_equal(Route(P, local_pref=91))

    def test_community_difference_detected(self):
        tagged = Route(P, communities=frozenset((5,)))
        assert not Route(P).attributes_equal(tagged)


class TestFormatting:
    def test_path_str(self):
        assert Route(P, as_path=(10, 20)).path_str() == "10 20"
        assert Route(P).path_str() == ""

    def test_repr_mentions_prefix_and_path(self):
        text = repr(Route(P, as_path=(3, 4)))
        assert "10.0.0.0/24" in text and "3 4" in text


class TestOriginEnum:
    def test_parse_codes(self):
        assert Origin.parse("i") is Origin.IGP
        assert Origin.parse("e") is Origin.EGP
        assert Origin.parse("?") is Origin.INCOMPLETE
        assert Origin.parse("IGP") is Origin.IGP

    def test_parse_rejects_unknown(self):
        import pytest

        with pytest.raises(ValueError):
            Origin.parse("x")

    def test_code_round_trip(self):
        for origin in Origin:
            assert Origin.parse(origin.code) is origin

    def test_preference_order(self):
        assert Origin.IGP < Origin.EGP < Origin.INCOMPLETE
