"""Tests for logging config, run metadata, stats rendering and the
clause-provenance (``iter N``) dialect round-trip."""

import io
import json
import logging

import pytest

from repro.bgp import Network
from repro.bgp.policy import Action, Clause, Match
from repro.cbgp import export_network, parse_script
from repro.errors import DatasetError
from repro.net.prefix import Prefix
from repro.obs.logs import JsonFormatter, configure_logging
from repro.obs.meta import git_sha, run_metadata
from repro.obs.stats import health_stats, load_health_report, render_stats
from repro.resilience.health import RunHealth

P = Prefix("10.0.0.0/24")


class TestLogging:
    def teardown_method(self):
        configure_logging(level="warning")

    def test_sets_level_on_repro_root(self):
        configure_logging(level="debug")
        assert logging.getLogger("repro").level == logging.DEBUG

    def test_idempotent_handler_install(self):
        configure_logging(level="info")
        configure_logging(level="info")
        assert len(logging.getLogger("repro").handlers) == 1

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            configure_logging(level="chatty")

    def test_json_formatter_emits_json(self):
        stream = io.StringIO()
        configure_logging(level="info", json_format=True, stream=stream)
        logging.getLogger("repro.test").info("hello %s", "world")
        record = json.loads(stream.getvalue())
        assert record["message"] == "hello world"
        assert record["level"] == "info"
        assert record["logger"] == "repro.test"

    def test_json_formatter_includes_exception(self):
        import sys

        formatter = JsonFormatter()
        try:
            raise ValueError("boom")
        except ValueError:
            record = logging.LogRecord(
                "repro.test", logging.ERROR, __file__, 1, "failed", (),
                sys.exc_info(),
            )
        document = json.loads(formatter.format(record))
        assert document["message"] == "failed"
        assert "ValueError: boom" in document["exception"]


class TestRunMetadata:
    def test_keys_and_seed(self):
        meta = run_metadata(argv=["refine", "d.dump"], seed=7)
        assert meta["argv"] == ["refine", "d.dump"]
        assert meta["seed"] == 7
        assert meta["repro_version"]
        assert meta["python"].count(".") == 2

    def test_git_sha_in_this_checkout(self):
        sha = git_sha()
        assert sha is None or (len(sha) == 40 and set(sha) <= set("0123456789abcdef"))

    def test_git_sha_outside_git(self, tmp_path):
        assert git_sha(cwd=tmp_path) is None


class TestStatsRendering:
    def _report(self):
        health = RunHealth()
        health.record_meta(run_metadata(argv=["chaos"], seed=1))
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("engine.messages").inc(42)
        registry.gauge("refine.match_rate").set(0.75)
        registry.histogram("engine.messages_per_prefix").observe(42)
        health.record_metrics(registry)
        health.phases["simulate"] = 1.5
        return health.to_dict()

    def test_health_to_dict_carries_metrics_and_meta(self):
        report = self._report()
        assert report["metrics"]["counters"]["engine.messages"] == 42
        assert report["meta"]["seed"] == 1

    def test_render_stats_shows_everything(self):
        text = render_stats(self._report())
        assert "engine.messages" in text
        assert "42" in text
        assert "refine.match_rate" in text
        assert "simulate" in text
        assert "p95" in text

    def test_health_stats_slice(self):
        document = health_stats(self._report())
        assert document["metrics"]["gauges"]["refine.match_rate"] == 0.75
        assert document["phases_seconds"]["simulate"] == 1.5

    def test_render_without_metrics_says_so(self):
        assert "none recorded" in render_stats({"exit_code": 0})

    def test_load_health_report_errors(self, tmp_path):
        with pytest.raises(DatasetError):
            load_health_report(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(DatasetError):
            load_health_report(bad)
        array = tmp_path / "array.json"
        array.write_text("[1,2]")
        with pytest.raises(DatasetError):
            load_health_report(array)

    def test_load_health_report_round_trip(self, tmp_path):
        path = tmp_path / "health.json"
        health = RunHealth()
        health.record_metrics(None)  # defaults to the global registry
        health.write(path)
        assert load_health_report(path)["exit_code"] == 0


class TestIterationProvenanceRoundTrip:
    def _network_with_provenance(self):
        net = Network()
        r1, r2 = net.add_router(1), net.add_router(2)
        net.connect(r1, r2)
        session = net.get_session(r1, r2)
        session.ensure_import_map().append(
            Clause(
                Match(prefix=P),
                Action.PERMIT,
                set_med=50,
                tag="refine-rank",
                iteration=3,
            )
        )
        session.ensure_export_map().append(
            Clause(Match(prefix=P, path_len_lt=2), Action.DENY,
                   tag="refine-filter", iteration=2)
        )
        net.originate(r2, P)
        return net

    def test_iter_line_round_trips(self):
        net = self._network_with_provenance()
        buffer = io.StringIO()
        export_network(net, buffer)
        assert "iter 3" in buffer.getvalue()
        clone = parse_script(io.StringIO(buffer.getvalue()))
        iterations = {
            clause.tag: clause.iteration
            for s in clone.sessions.values()
            for route_map in (s.import_map, s.export_map)
            if route_map is not None
            for clause in route_map.clauses()
        }
        assert iterations == {"refine-rank": 3, "refine-filter": 2}

    def test_clause_without_iteration_still_parses(self):
        net = Network()
        r1, r2 = net.add_router(1), net.add_router(2)
        net.connect(r1, r2)
        session = net.get_session(r1, r2)
        session.ensure_import_map().append(
            Clause(Match(prefix=P), Action.PERMIT, set_med=10)
        )
        net.originate(r2, P)
        buffer = io.StringIO()
        export_network(net, buffer)
        assert "iter" not in buffer.getvalue()
        clone = parse_script(io.StringIO(buffer.getvalue()))
        clause = next(
            clause
            for s in clone.sessions.values()
            if s.import_map is not None
            for clause in s.import_map.clauses()
        )
        assert clause.iteration is None


class TestSupervisionStats:
    def _parallel_report(self):
        from repro.net.prefix import Prefix
        from repro.resilience.retry import (
            POISON,
            TIMEOUT,
            PrefixOutcome,
            ResilienceStats,
        )

        health = RunHealth()
        stats = ResilienceStats(supervision={
            "workers": 2, "spawned": 5, "deaths": 3, "restarts": 3,
            "task_timeouts": 1, "resubmits": 2, "drained": False,
        })
        stats.outcomes.append(
            PrefixOutcome.supervised_failure(Prefix("10.0.0.0/24"), POISON, 2, 1.0)
        )
        stats.outcomes.append(
            PrefixOutcome.supervised_failure(Prefix("10.1.0.0/24"), TIMEOUT, 2, 1.0)
        )
        health.record_simulation(stats)
        return health.to_dict()

    def test_health_stats_slice_has_outcomes_and_supervision(self):
        document = health_stats(self._parallel_report())
        assert document["simulation"]["outcomes"]["poison"] == 1
        assert document["simulation"]["outcomes"]["timeout"] == 1
        assert document["simulation"]["supervision"]["deaths"] == 3

    def test_render_shows_poison_and_supervision_counters(self):
        text = render_stats(self._parallel_report())
        assert "poison" in text
        assert "timeout" in text
        assert "supervision:" in text
        assert "deaths" in text
        assert "task_timeouts" in text

    def test_render_marks_interrupted_runs(self):
        report = self._parallel_report()
        report["interrupted"] = True
        assert "graceful shutdown" in render_stats(report)
