"""Unit tests for AS classification and stub pruning."""

from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.topology.classify import Level, classify_ases
from repro.topology.dataset import ObservedRoute, PathDataset
from repro.topology.graph import ASGraph
from repro.topology.prune import prune_single_homed_stubs

P = Prefix("10.0.0.0/24")


def build_scene():
    """1,2 = tier-1 clique; 3 = level-2 transit; 4 = single-homed stub;
    5 = multi-homed stub; 6 = single-homed observer stub."""
    paths = [
        ("o1", (1, 2, 3, 4)),
        ("o1", (1, 3, 5)),
        ("o2", (2, 3, 5)),
        ("o6", (6, 3, 4)),
        ("o2", (2, 5), Prefix("10.0.5.0/24")),
    ]
    ds = PathDataset()
    for point, path, *rest in paths:
        prefix = rest[0] if rest else P
        ds.add(ObservedRoute(point, path[0], prefix, ASPath(path)))
    graph = ASGraph.from_dataset(ds)
    return ds, graph


class TestClassification:
    def test_levels(self):
        ds, graph = build_scene()
        cls = classify_ases(ds, graph, level1=[1, 2])
        assert cls.levels[1] is Level.LEVEL1
        assert cls.levels[2] is Level.LEVEL1
        assert cls.levels[3] is Level.LEVEL2  # neighbour of tier-1
        assert cls.levels[5] is Level.LEVEL2  # neighbour of AS 2
        assert cls.levels[4] is Level.OTHER

    def test_transit_detection(self):
        ds, graph = build_scene()
        cls = classify_ases(ds, graph, level1=[1, 2])
        assert 3 in cls.transit_asns()  # middle of paths
        assert 2 in cls.transit_asns()  # middle of (1, 2, 3, 4)
        assert 4 not in cls.transit_asns()

    def test_homing(self):
        ds, graph = build_scene()
        cls = classify_ases(ds, graph, level1=[1, 2])
        assert 4 in cls.single_homed_stubs()  # only neighbour: 3
        assert 5 in cls.multi_homed_stubs()  # neighbours 2 and 3
        assert 6 in cls.single_homed_stubs()

    def test_summary_adds_up(self):
        ds, graph = build_scene()
        cls = classify_ases(ds, graph, level1=[1, 2])
        summary = cls.summary()
        assert summary["ases"] == graph.num_ases()
        assert (
            summary["transit"]
            + summary["stub_single_homed"]
            + summary["stub_multi_homed"]
            == summary["ases"]
        )


class TestPruning:
    def test_paths_ending_in_stub_are_transferred(self):
        ds, graph = build_scene()
        cls = classify_ases(ds, graph, level1=[1, 2])
        result = prune_single_homed_stubs(ds, graph, cls)
        # (1, 2, 3, 4) becomes (1, 2, 3): origin transferred to AS 3
        assert (1, 2, 3) in result.dataset.unique_paths()
        assert all(4 not in path for path in result.dataset.unique_paths())
        # (6, 3, 4) is dropped with its pruned observer, so exactly one
        # route is transferred
        assert result.transferred_routes == 1

    def test_observations_from_pruned_stubs_are_dropped(self):
        ds, graph = build_scene()
        cls = classify_ases(ds, graph, level1=[1, 2])
        result = prune_single_homed_stubs(ds, graph, cls)
        assert 6 not in result.dataset.observer_asns()
        assert result.dropped_routes >= 1

    def test_graph_loses_pruned_nodes(self):
        ds, graph = build_scene()
        cls = classify_ases(ds, graph, level1=[1, 2])
        result = prune_single_homed_stubs(ds, graph, cls)
        assert 4 not in result.graph
        assert 6 not in result.graph
        assert 5 in result.graph  # multi-homed stubs stay
        assert result.pruned_asns == {4, 6}

    def test_original_inputs_untouched(self):
        ds, graph = build_scene()
        cls = classify_ases(ds, graph, level1=[1, 2])
        prune_single_homed_stubs(ds, graph, cls)
        assert 4 in graph
        assert len(ds) == 5

    def test_multi_homed_origins_keep_full_paths(self):
        ds, graph = build_scene()
        cls = classify_ases(ds, graph, level1=[1, 2])
        result = prune_single_homed_stubs(ds, graph, cls)
        assert (1, 3, 5) in result.dataset.unique_paths()
