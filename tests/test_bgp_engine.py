"""Integration tests for the propagation engine (eBGP-only topologies)."""

import pytest

from repro.bgp import DecisionConfig, Network, simulate, simulate_prefix
from repro.bgp.policy import Action, Clause, Match
from repro.errors import SimulationError
from repro.net.community import NO_ADVERTISE, NO_EXPORT
from repro.net.prefix import Prefix

PREFIX = Prefix("10.0.0.0/24")


class TestBasicPropagation:
    def test_direct_neighbor_learns_route(self, line):
        net, routers, prefix = line
        simulate(net)
        best = routers[1].best(prefix)
        assert best is not None
        assert best.as_path == (3,)

    def test_shortest_path_preferred(self, line):
        net, routers, prefix = line
        simulate(net)
        # AS1 sees both (3,) and (2, 3); shortest wins
        paths = {route.as_path for route in routers[1].rib_in_routes(prefix)}
        assert paths == {(3,), (2, 3)}
        assert routers[1].best(prefix).as_path == (3,)

    def test_as_path_prepending_on_export(self, diamond):
        net, routers, prefix = diamond
        simulate(net)
        assert routers[2].best(prefix).as_path == (4,)
        assert routers[1].best(prefix).as_path in ((2, 4), (3, 4))

    def test_loop_prevention(self, diamond):
        net, routers, prefix = diamond
        simulate(net)
        # AS4's own paths never contain AS4 twice
        for router in net.routers.values():
            for route in router.rib_in_routes(prefix):
                assert router.asn not in route.as_path

    def test_tie_break_lowest_router_id(self, diamond):
        net, routers, prefix = diamond
        simulate(net)
        # AS1 gets (2,4) from AS2 and (3,4) from AS3; AS2's router id is lower
        assert routers[1].best(prefix).as_path == (2, 4)

    def test_adj_rib_out_reflects_best(self, line):
        net, routers, prefix = line
        simulate(net)
        rib_out = routers[3].adj_rib_out[prefix]
        assert rib_out  # origin announced to peers
        for route in rib_out.values():
            assert route.as_path == (3,)

    def test_simulation_is_deterministic(self, diamond):
        net, routers, prefix = diamond
        simulate(net)
        first = {rid: r.best(prefix).as_path if r.best(prefix) else None
                 for rid, r in net.routers.items()}
        simulate(net)
        second = {rid: r.best(prefix).as_path if r.best(prefix) else None
                  for rid, r in net.routers.items()}
        assert first == second

    def test_resimulation_clears_stale_state(self, line):
        net, routers, prefix = line
        simulate(net)
        net.disconnect(routers[1], routers[3])
        simulate_prefix(net, prefix)
        assert routers[1].best(prefix).as_path == (2, 3)


class TestPolicies:
    def test_export_filter_blocks_route(self, line):
        net, routers, prefix = line
        session = net.get_session(routers[3], routers[1])
        session.ensure_export_map().append(Clause(Match(prefix=prefix), Action.DENY))
        simulate(net)
        assert routers[1].best(prefix).as_path == (2, 3)

    def test_import_filter_blocks_route(self, line):
        net, routers, prefix = line
        session = net.get_session(routers[3], routers[1])
        session.ensure_import_map().append(Clause(Match(prefix=prefix), Action.DENY))
        simulate(net)
        assert routers[1].best(prefix).as_path == (2, 3)

    def test_path_length_filter(self, line):
        net, routers, prefix = line
        session = net.get_session(routers[3], routers[1])
        session.ensure_export_map().append(
            Clause(Match(prefix=prefix, path_len_lt=2), Action.DENY)
        )
        simulate(net)
        assert routers[1].best(prefix).as_path == (2, 3)

    def test_local_pref_overrides_length(self, line):
        net, routers, prefix = line
        session = net.get_session(routers[2], routers[1])
        session.ensure_import_map().append(
            Clause(Match(prefix=prefix), set_local_pref=200)
        )
        simulate(net)
        assert routers[1].best(prefix).as_path == (2, 3)

    def test_med_rank_with_always_compare(self, diamond):
        net, routers, prefix = diamond
        # Prefer the AS3 branch at AS1 via lower MED
        net.get_session(routers[3], routers[1]).ensure_import_map().append(
            Clause(Match(prefix=prefix), set_med=0)
        )
        net.get_session(routers[2], routers[1]).ensure_import_map().append(
            Clause(Match(prefix=prefix), set_med=50)
        )
        simulate(net, config=DecisionConfig(med_always_compare=True))
        assert routers[1].best(prefix).as_path == (3, 4)

    def test_med_reset_on_ebgp_export(self, line):
        net, routers, prefix = line
        # AS3 sets MED toward AS2; AS2's re-export to AS1 must reset it
        net.get_session(routers[3], routers[2]).ensure_export_map().append(
            Clause(Match(prefix=prefix), set_med=77)
        )
        simulate(net)
        via_as2 = [
            r for r in routers[1].rib_in_routes(prefix) if r.as_path == (2, 3)
        ]
        assert via_as2 and via_as2[0].med == 0

    def test_withdraw_on_filter_addition_and_resim(self, line):
        net, routers, prefix = line
        simulate(net)
        assert routers[1].best(prefix).as_path == (3,)
        session = net.get_session(routers[3], routers[1])
        session.ensure_export_map().append(Clause(Match(prefix=prefix), Action.DENY))
        simulate_prefix(net, prefix)
        assert routers[1].best(prefix).as_path == (2, 3)


class TestCommunities:
    def test_no_export_stops_at_first_as(self, line):
        net, routers, prefix = line
        # attach NO_EXPORT on AS3 -> AS2 announcements
        net.get_session(routers[3], routers[2]).ensure_import_map().append(
            Clause(Match(prefix=prefix), add_communities=frozenset((NO_EXPORT,)))
        )
        # block the direct AS3 -> AS1 session so AS1 would depend on AS2
        net.get_session(routers[3], routers[1]).ensure_export_map().append(
            Clause(Match(prefix=prefix), Action.DENY)
        )
        simulate(net)
        assert routers[2].best(prefix) is not None
        assert routers[1].best(prefix) is None

    def test_communities_propagate_transitively(self, line):
        net, routers, prefix = line
        net.get_session(routers[3], routers[2]).ensure_import_map().append(
            Clause(Match(prefix=prefix), add_communities=frozenset((42,)))
        )
        simulate(net)
        via_as2 = [
            r for r in routers[1].rib_in_routes(prefix) if r.as_path == (2, 3)
        ]
        assert via_as2 and 42 in via_as2[0].communities

    def test_no_advertise_stops_everywhere(self, line):
        net, routers, prefix = line
        for dst in (routers[1], routers[2]):
            net.get_session(routers[3], dst).ensure_import_map().append(
                Clause(Match(prefix=prefix), add_communities=frozenset((NO_ADVERTISE,)))
            )
        simulate(net)
        # AS1 and AS2 learn the direct route but must not re-advertise it
        assert routers[1].best(prefix).as_path == (3,)
        paths_at_1 = {r.as_path for r in routers[1].rib_in_routes(prefix)}
        assert (2, 3) not in paths_at_1


class TestDivergenceGuard:
    def test_dispute_wheel_raises(self):
        """The classic BAD GADGET: three ASes each prefer the long way round."""
        net = Network("bad-gadget")
        hub = net.add_router(4)
        spokes = {asn: net.add_router(asn) for asn in (1, 2, 3)}
        prefix = Prefix("10.9.0.0/24")
        net.originate(hub, prefix)
        cycle = {1: 2, 2: 3, 3: 1}
        for asn, router in spokes.items():
            net.connect(router, hub)
        for asn, next_asn in cycle.items():
            net.connect(spokes[asn], spokes[next_asn])
        for asn, next_asn in cycle.items():
            session = net.get_session(spokes[next_asn], spokes[asn])
            session.ensure_import_map().append(
                Clause(Match(prefix=prefix), set_local_pref=200)
            )
        with pytest.raises(SimulationError):
            simulate(net, max_messages=5000)

    def test_stats_track_messages_per_prefix(self, line):
        net, routers, prefix = line
        stats = simulate(net)
        assert stats.prefixes == 1
        assert stats.messages > 0
        assert stats.per_prefix_messages[prefix] == stats.messages
