"""Tests for the data-plane forwarding simulation."""

import pytest

from repro.bgp import Network, simulate
from repro.data.synthesis import SyntheticConfig, synthesize_internet
from repro.forwarding import (
    ForwardingStatus,
    forward_as_path,
    traceroute,
)
from repro.net.prefix import Prefix


class TestBasicForwarding:
    def test_delivery_on_line(self, line):
        net, routers, prefix = line
        simulate(net)
        trace = traceroute(net, routers[1], prefix)
        assert trace.delivered
        assert trace.as_path(net) == (1, 3)

    def test_delivery_at_origin(self, line):
        net, routers, prefix = line
        simulate(net)
        trace = traceroute(net, routers[3], prefix)
        assert trace.delivered
        assert trace.hops == [routers[3].router_id]

    def test_unreachable_without_route(self, line):
        net, routers, prefix = line
        simulate(net)
        other = Prefix("99.0.0.0/24")
        trace = traceroute(net, routers[1], other)
        assert trace.status is ForwardingStatus.UNREACHABLE

    def test_data_plane_matches_control_plane_on_diamond(self, diamond):
        net, routers, prefix = diamond
        simulate(net)
        for router in routers.values():
            expected = (router.asn,) + router.best(prefix).as_path
            # collapse origin duplicate when router is the origin
            assert forward_as_path(net, router, prefix) == tuple(
                dict.fromkeys(expected)
            ) or forward_as_path(net, router, prefix) == expected


class TestIntraAsForwarding:
    def test_ibgp_route_traverses_igp_hops(self):
        """Internal router forwards through a middle router to the egress."""
        net = Network()
        internal = net.add_router(10)
        middle = net.add_router(10)
        egress = net.add_router(10)
        node = net.ases[10]
        node.igp.add_link(internal.router_id, middle.router_id, 1)
        node.igp.add_link(middle.router_id, egress.router_id, 1)
        node.igp.add_link(internal.router_id, egress.router_id, 5)
        net.ibgp_full_mesh(10)
        origin = net.add_router(20)
        net.connect(egress, origin)
        prefix = Prefix("10.5.0.0/24")
        net.originate(origin, prefix)
        simulate(net)
        trace = traceroute(net, internal, prefix)
        assert trace.delivered
        assert trace.hops == [
            internal.router_id,
            middle.router_id,
            egress.router_id,
            origin.router_id,
        ]

    def test_hot_potato_deflection_is_followed(self):
        """The middle router's own (closer) egress wins over the source's."""
        net = Network()
        a = net.add_router(10)  # source, closer to egress1 via b
        b = net.add_router(10)  # middle, has its own eBGP session
        egress1 = net.add_router(10)
        node = net.ases[10]
        node.igp.add_link(a.router_id, b.router_id, 1)
        node.igp.add_link(b.router_id, egress1.router_id, 1)
        net.ibgp_full_mesh(10)
        up1, up2 = net.add_router(21), net.add_router(22)
        net.connect(egress1, up1)
        net.connect(b, up2)
        origin = net.add_router(40)
        net.connect(up1, origin)
        net.connect(up2, origin)
        prefix = Prefix("10.6.0.0/24")
        net.originate(origin, prefix)
        simulate(net)
        # b prefers its own eBGP route (via up2)
        assert b.best(prefix).as_path == (22, 40)
        trace = traceroute(net, a, prefix)
        assert trace.delivered
        # a's packet is deflected at b towards up2, regardless of a's own
        # choice between the two egresses
        assert net.routers[trace.hops[2]].asn in (21, 22)

    def test_broken_igp_detected(self):
        net = Network()
        a = net.add_router(10)
        b = net.add_router(10)
        # iBGP session but NO IGP link between them
        net.connect(a, b)
        origin = net.add_router(20)
        net.connect(b, origin)
        prefix = Prefix("10.7.0.0/24")
        net.originate(origin, prefix)
        simulate(net)
        assert a.best(prefix) is not None  # learned over iBGP
        trace = traceroute(net, a, prefix)
        assert trace.status is ForwardingStatus.BROKEN_IGP


class TestGroundTruthConsistency:
    @pytest.fixture(scope="class")
    def internet(self):
        config = SyntheticConfig(seed=4, n_level1=3, n_level2=5, n_other=8, n_stub=14)
        internet = synthesize_internet(config)
        simulate(internet.network)
        return internet

    def test_every_routed_packet_is_delivered(self, internet):
        net = internet.network
        checked = 0
        for prefix in net.prefixes()[:20]:
            for router in net.routers.values():
                if router.best(prefix) is None:
                    continue
                trace = traceroute(net, router, prefix)
                assert trace.delivered, (
                    f"{router.name} -> {prefix}: {trace.status}"
                )
                checked += 1
        assert checked > 100

    def test_delivered_as_path_ends_at_origin(self, internet):
        net = internet.network
        for prefix in net.prefixes()[:10]:
            origin_asn = internet.origin_of(prefix)
            for router in list(net.routers.values())[:30]:
                path = forward_as_path(net, router, prefix)
                if path is not None:
                    assert path[-1] == origin_asn

    def test_no_forwarding_loops_anywhere(self, internet):
        net = internet.network
        for prefix in net.prefixes()[:10]:
            for router in net.routers.values():
                trace = traceroute(net, router, prefix)
                assert trace.status is not ForwardingStatus.LOOP


class TestFibForwarding:
    def test_lpm_resolves_inside_prefix(self, line):
        from repro.forwarding import Fib, traceroute_address

        net, routers, prefix = line
        simulate(net)
        address = prefix.network | 7  # a host inside 10.0.0.0/24
        trace = traceroute_address(net, routers[1], address)
        assert trace.delivered
        assert net.routers[trace.hops[-1]].asn == 3

    def test_unrouted_address_unreachable(self, line):
        from repro.forwarding import traceroute_address
        from repro.net.ip import ip_from_string

        net, routers, prefix = line
        simulate(net)
        trace = traceroute_address(net, routers[1], ip_from_string("99.9.9.9"))
        assert trace.status is ForwardingStatus.UNREACHABLE

    def test_more_specific_prefix_wins(self):
        """A /25 originated elsewhere attracts the traffic (hijack shape)."""
        from repro.forwarding import traceroute_address

        net = Network()
        observer = net.add_router(1)
        legit = net.add_router(2)
        hijacker = net.add_router(3)
        net.connect(observer, legit)
        net.connect(observer, hijacker)
        covering = Prefix("10.0.0.0/24")
        specific = Prefix("10.0.0.0/25")
        net.originate(legit, covering)
        net.originate(hijacker, specific)
        simulate(net)
        inside = covering.network | 5       # falls in the /25
        outside = covering.network | 200    # only the /24 covers it
        assert (
            net.routers[
                traceroute_address(net, observer, inside).hops[-1]
            ].asn
            == 3
        )
        assert (
            net.routers[
                traceroute_address(net, observer, outside).hops[-1]
            ].asn
            == 2
        )

    def test_prebuilt_fibs_match_on_the_fly(self, diamond):
        from repro.forwarding import build_fibs, traceroute_address

        net, routers, prefix = diamond
        simulate(net)
        fibs = build_fibs(net)
        address = prefix.network | 1
        a = traceroute_address(net, routers[1], address)
        b = traceroute_address(net, routers[1], address, fibs)
        assert a.hops == b.hops and a.status == b.status

    def test_fib_size_counts_entries(self, line):
        from repro.forwarding import Fib

        net, routers, prefix = line
        simulate(net)
        assert len(Fib(routers[1])) == 1
        assert len(Fib(routers[3])) == 1  # its own local route
