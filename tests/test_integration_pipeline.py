"""Full-pipeline integration test: the paper's headline claims, end to end.

dumps -> cleaning -> graph/classification/pruning -> split -> initial
model -> refinement -> prediction.  Asserts the three qualitative results
the paper leads with:

1. the refined model reproduces the training feeds *exactly*;
2. prediction for held-out feeds is matched down to the final tie-break
   far more often than either single-router baseline agrees;
3. the refined model needs multiple quasi-routers in a tail of core ASes.
"""

import pytest

from repro.core import (
    Refiner,
    build_initial_model,
    evaluate_model,
    split_by_observation_points,
)
from repro.core.metrics import AgreementCategory, evaluate_agreement
from repro.data import read_table_dump, write_table_dump
from repro.relationships import (
    apply_relationship_policies,
    infer_valley_free_relationships,
)
from repro.relationships.gao import enforce_acyclic_hierarchy


@pytest.fixture(scope="module")
def refined(mini_pipeline):
    pruned = mini_pipeline["pruned"]
    training, validation = split_by_observation_points(pruned.dataset, 0.5, seed=7)
    model = build_initial_model(pruned.dataset, pruned.graph.copy())
    result = Refiner(model, training).run()
    return model, result, training, validation


class TestHeadlineClaims:
    def test_training_matched_exactly(self, refined):
        model, result, training, _ = refined
        assert result.converged
        report = evaluate_model(model, training)
        assert report.rib_out_rate == 1.0

    def test_validation_beats_80_percent_tie_break(self, refined):
        model, _, _, validation = refined
        report = evaluate_model(model, validation)
        assert report.tie_break_or_better_rate > 0.8, (
            f"paper claims >80%, got {report.tie_break_or_better_rate:.1%}"
        )

    def test_model_beats_single_router_baselines(self, refined, mini_pipeline):
        model, _, _, validation = refined
        refined_report = evaluate_model(model, validation)

        pruned = mini_pipeline["pruned"]
        baseline = build_initial_model(pruned.dataset, pruned.graph.copy())
        baseline.simulate_all()
        agreement = evaluate_agreement(baseline, validation)
        baseline_rate = agreement[AgreementCategory.AGREE] / sum(agreement.values())
        assert refined_report.rib_out_rate > baseline_rate

    def test_policy_baseline_also_beaten(self, refined, mini_pipeline):
        model, _, _, validation = refined
        refined_report = evaluate_model(model, validation)
        pruned = mini_pipeline["pruned"]
        relationships = infer_valley_free_relationships(
            pruned.dataset, mini_pipeline["level1"]
        )
        enforce_acyclic_hierarchy(relationships)
        baseline = build_initial_model(pruned.dataset, pruned.graph.copy())
        apply_relationship_policies(baseline.network, relationships)
        baseline.simulate_all(tolerate_divergence=True)
        agreement = evaluate_agreement(baseline, validation)
        baseline_rate = agreement[AgreementCategory.AGREE] / sum(agreement.values())
        assert refined_report.rib_out_rate > baseline_rate

    def test_quasi_router_tail_exists(self, refined):
        model, _, _, _ = refined
        counts = model.quasi_router_counts()
        assert max(counts.values()) >= 2, "route diversity requires duplication"
        single = sum(1 for count in counts.values() if count == 1)
        assert single / len(counts) > 0.3  # most ASes stay simple


class TestDumpDrivenPipeline:
    def test_pipeline_reproducible_from_dump_file(self, mini_dataset, tmp_path):
        """Everything downstream works identically from a written dump."""
        dump_file = tmp_path / "snapshot.dump"
        write_table_dump(mini_dataset, dump_file)
        parsed = read_table_dump(dump_file).dataset.cleaned()
        assert parsed.unique_paths() == mini_dataset.unique_paths()

        training, validation = split_by_observation_points(parsed, 0.5, seed=1)
        model = build_initial_model(parsed)
        result = Refiner(model, training).run()
        assert result.converged
        report = evaluate_model(model, validation)
        assert report.tie_break_or_better_rate > 0.6
