"""Tests for prediction and what-if analysis."""

import pytest

from repro.core.build import build_initial_model
from repro.core.predict import (
    ON_COLD_SIMULATE,
    evaluate_model,
    origin_is_simulated,
    predict_for_origins,
    predict_paths,
    selected_paths,
    simulate_for_dataset,
)
from repro.core.refine import Refiner
from repro.core.whatif import (
    depeer,
    simulate_link_failure,
    validate_session_endpoints,
)
from repro.errors import ModelError, TopologyError
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.topology.dataset import ObservedRoute, PathDataset

P = Prefix("10.0.0.0/24")


def dataset_from_paths(*paths):
    ds = PathDataset()
    for index, path in enumerate(paths):
        ds.add(ObservedRoute(f"p{index}", path[0], P, ASPath(path)))
    return ds


@pytest.fixture
def refined_diamond():
    ds = dataset_from_paths((1, 2, 4), (1, 3, 4))
    model = build_initial_model(ds)
    Refiner(model, ds).run()
    return model, ds


class TestPredictPaths:
    def test_returns_full_paths(self, refined_diamond):
        model, _ = refined_diamond
        paths = predict_paths(model, 4, 1, resimulate=True)
        assert paths == {(1, 2, 4), (1, 3, 4)}

    def test_single_router_single_path(self, refined_diamond):
        model, _ = refined_diamond
        paths = predict_paths(model, 4, 2, resimulate=True)
        assert paths == {(2, 4)}

    def test_origin_predicts_itself(self, refined_diamond):
        model, _ = refined_diamond
        assert predict_paths(model, 4, 4, resimulate=True) == {(4,)}

    def test_predict_for_origins_skips_unknown(self, refined_diamond):
        model, _ = refined_diamond
        model.simulate_all()
        result = predict_for_origins(model, [4, 999], 1)
        assert set(result) == {4}

    def test_predict_for_origins_strict_names_unknown(self, refined_diamond):
        model, _ = refined_diamond
        model.simulate_all()
        with pytest.raises(TopologyError, match="999"):
            predict_for_origins(model, [4, 999], 1, strict=True)

    def test_predict_for_origins_rejects_unknown_observer(
        self, refined_diamond
    ):
        model, _ = refined_diamond
        with pytest.raises(ModelError, match="999"):
            predict_for_origins(model, [4], 999)


class TestColdState:
    """predict_paths on a never-simulated origin must not lie."""

    def test_cold_origin_raises_naming_the_origin(self):
        ds = dataset_from_paths((1, 2, 4), (1, 3, 4))
        model = build_initial_model(ds)  # built, never simulated
        assert not origin_is_simulated(model, 4)
        with pytest.raises(ModelError, match="AS 4"):
            predict_paths(model, 4, 1)

    def test_cold_origin_can_simulate_on_demand(self):
        ds = dataset_from_paths((1, 2, 4))
        model = build_initial_model(ds)
        assert not origin_is_simulated(model, 4)
        paths = predict_paths(model, 4, 1, on_cold=ON_COLD_SIMULATE)
        assert paths == {(1, 2, 4)}
        assert origin_is_simulated(model, 4)

    def test_warm_origin_answers_without_resimulating(self, refined_diamond):
        model, _ = refined_diamond
        assert origin_is_simulated(model, 4)
        assert predict_paths(model, 4, 1) == {(1, 2, 4), (1, 3, 4)}

    def test_resimulate_overrides_cold_check(self):
        ds = dataset_from_paths((1, 2, 4))
        model = build_initial_model(ds)
        assert predict_paths(model, 4, 1, resimulate=True) == {(1, 2, 4)}

    def test_unknown_origin_is_a_topology_error(self, refined_diamond):
        model, _ = refined_diamond
        with pytest.raises(TopologyError, match="999"):
            predict_paths(model, 999, 1)

    def test_unknown_observer_is_a_model_error(self, refined_diamond):
        model, _ = refined_diamond
        with pytest.raises(ModelError, match="999"):
            predict_paths(model, 4, 999, resimulate=True)

    def test_selected_paths_matches_predict(self, refined_diamond):
        model, _ = refined_diamond
        model.simulate_all()
        assert selected_paths(model, 4, 1) == predict_paths(model, 4, 1)


class TestEvaluateModel:
    def test_evaluates_after_resimulation(self, refined_diamond):
        model, ds = refined_diamond
        report = evaluate_model(model, ds)
        assert report.rib_out_rate == 1.0

    def test_skips_origins_not_in_model(self, refined_diamond):
        model, _ = refined_diamond
        foreign = dataset_from_paths((1, 2, 4))
        foreign.add(ObservedRoute("x", 1, P, ASPath((1, 999))))
        report = evaluate_model(model, foreign)
        assert report.total == 1  # the (1, 999) case was excluded

    def test_simulate_for_dataset_counts(self, refined_diamond):
        model, ds = refined_diamond
        assert simulate_for_dataset(model, ds) == 1  # one origin (AS4)


class TestWhatIf:
    def test_depeer_removes_sessions_and_edge(self, refined_diamond):
        model, _ = refined_diamond
        report = depeer(model, 2, 4, origins=[4], observers=[1, 2, 3])
        assert not model.graph.has_edge(2, 4)
        assert all(
            session.dst.asn != 4 or session.src.asn != 2
            for session in model.network.sessions.values()
        )
        assert "AS2-AS4" in report.description

    def test_depeer_reroutes_observer(self, refined_diamond):
        model, _ = refined_diamond
        report = depeer(model, 2, 4, origins=[4], observers=[1, 2])
        changed_pairs = {(c.observer_asn, c.origin_asn) for c in report.changes}
        assert (2, 4) in changed_pairs  # AS2 must now go via 1 or 3
        after = predict_paths(model, 4, 2)
        assert after and all(path[1] != 4 for path in after)

    def test_unreachable_detection(self):
        # line 1-2-3: removing 2-3 cuts AS1 and AS2 off from AS3
        ds = dataset_from_paths((1, 2, 3))
        model = build_initial_model(ds)
        model.simulate_all()
        report = depeer(model, 2, 3, origins=[3], observers=[1, 2])
        assert report.unreachable_pairs == 2

    def test_unknown_edge_rejected(self, refined_diamond):
        model, _ = refined_diamond
        with pytest.raises(TopologyError):
            depeer(model, 2, 3)

    def test_multi_edge_failure(self, refined_diamond):
        model, _ = refined_diamond
        report = simulate_link_failure(
            model, [(2, 4), (3, 4)], origins=[4], observers=[1]
        )
        assert report.unreachable_pairs == 1

    def test_no_change_for_unrelated_link(self):
        ds = dataset_from_paths((1, 2, 4), (5, 2, 4), (1, 3, 4))
        model = build_initial_model(ds)
        model.simulate_all()
        report = depeer(model, 1, 3, origins=[4], observers=[5])
        assert report.affected_pairs == 0


class TestUpFrontValidation:
    """Both endpoints are validated before any simulation is spent."""

    def _counting(self, model):
        calls = []
        original = model.simulate_origin

        def wrapper(origin, *args, **kwargs):
            calls.append(origin)
            return original(origin, *args, **kwargs)

        model.simulate_origin = wrapper
        return calls

    def test_unknown_asn_raises_before_simulating(self, refined_diamond):
        model, _ = refined_diamond
        calls = self._counting(model)
        with pytest.raises(TopologyError, match="AS 64999"):
            simulate_link_failure(model, [(2, 64999)])
        assert calls == []

    def test_both_endpoints_checked(self, refined_diamond):
        model, _ = refined_diamond
        with pytest.raises(TopologyError, match="AS 64998"):
            simulate_link_failure(model, [(64998, 2)])

    def test_missing_adjacency_raises_before_simulating(
        self, refined_diamond
    ):
        model, _ = refined_diamond
        calls = self._counting(model)
        with pytest.raises(TopologyError, match="no adjacency"):
            simulate_link_failure(model, [(2, 3)])
        assert calls == []

    def test_validator_accepts_real_adjacency(self, refined_diamond):
        model, _ = refined_diamond
        validate_session_endpoints(model, [(2, 4), (3, 4)])

    def test_later_bad_edge_still_blocks_everything(self, refined_diamond):
        # One good edge followed by a bad one: nothing may simulate.
        model, _ = refined_diamond
        calls = self._counting(model)
        with pytest.raises(TopologyError, match="AS 64999"):
            simulate_link_failure(model, [(2, 4), (64999, 4)])
        assert calls == []
