"""Tests for Section 4.7: extending a refined model for new prefixes."""

import pytest

from repro.core.build import build_initial_model
from repro.core.predict import evaluate_model, extend_model_for_origins
from repro.core.refine import Refiner
from repro.core.split import split_by_origin
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.topology.dataset import ObservedRoute, PathDataset

P = Prefix("10.0.0.0/24")


def dataset_from_paths(*paths):
    ds = PathDataset()
    for index, path in enumerate(paths):
        ds.add(ObservedRoute(f"p{index}", path[0], P, ASPath(path)))
    return ds


class TestExtendSmall:
    def test_extension_matches_new_origin(self):
        # Full topology knows origins 4 and 5; refine only for 4 first.
        full = dataset_from_paths((1, 2, 4), (1, 3, 4), (1, 3, 2, 5), (1, 2, 5))
        model = build_initial_model(full)
        base = Refiner(model, full.restrict_origins({4})).run()
        assert base.converged

        result = extend_model_for_origins(model, full, [5])
        assert result.converged
        report = evaluate_model(model, full)
        assert report.rib_out_rate == 1.0

    def test_extension_preserves_existing_matches(self):
        full = dataset_from_paths((1, 2, 4), (1, 3, 4), (1, 3, 2, 5))
        model = build_initial_model(full)
        Refiner(model, full.restrict_origins({4})).run()
        before = evaluate_model(model, full.restrict_origins({4}))
        assert before.rib_out_rate == 1.0

        extend_model_for_origins(model, full, [5])
        after = evaluate_model(model, full.restrict_origins({4}))
        assert after.rib_out_rate == 1.0

    def test_extension_with_no_new_paths_is_noop(self):
        full = dataset_from_paths((1, 2, 4))
        model = build_initial_model(full)
        Refiner(model, full).run()
        clauses_before = model.policy_clause_count()
        result = extend_model_for_origins(model, full, [4])
        assert result.converged
        assert model.policy_clause_count() == clauses_before


class TestExtendOnMiniInternet:
    def test_origin_split_then_extend_closes_the_gap(self, mini_pipeline):
        pruned = mini_pipeline["pruned"]
        training, validation = split_by_origin(pruned.dataset, 0.5, seed=2)
        model = build_initial_model(pruned.dataset, pruned.graph.copy())
        Refiner(model, training).run()

        before = evaluate_model(model, validation)
        result = extend_model_for_origins(
            model, pruned.dataset, validation.origin_asns()
        )
        after = evaluate_model(model, validation)
        assert after.rib_out_rate >= before.rib_out_rate
        assert after.rib_out_rate == pytest.approx(1.0) or result.converged
        # extension must not regress the original training fit
        training_report = evaluate_model(model, training)
        assert training_report.rib_out_rate > 0.98
