"""Unit tests for repro.net.ip."""

import pytest

from repro.errors import ParseError
from repro.net.ip import IPv4Address, ip_from_string, ip_to_string


class TestIpFromString:
    def test_parses_simple_address(self):
        assert ip_from_string("10.0.0.1") == (10 << 24) | 1

    def test_parses_zero(self):
        assert ip_from_string("0.0.0.0") == 0

    def test_parses_broadcast(self):
        assert ip_from_string("255.255.255.255") == 0xFFFFFFFF

    def test_strips_whitespace(self):
        assert ip_from_string(" 1.2.3.4 ") == ip_from_string("1.2.3.4")

    @pytest.mark.parametrize(
        "bad",
        ["1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "1.2.3.-4", "01.2.3.4", ""],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ParseError):
            ip_from_string(bad)


class TestIpToString:
    def test_formats_simple_address(self):
        assert ip_to_string((192 << 24) | (168 << 16) | 5) == "192.168.0.5"

    def test_round_trip(self):
        for text in ("0.0.0.0", "10.20.30.40", "255.255.255.255"):
            assert ip_to_string(ip_from_string(text)) == text

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            ip_to_string(1 << 32)
        with pytest.raises(ValueError):
            ip_to_string(-1)


class TestIPv4Address:
    def test_constructs_from_string(self):
        assert IPv4Address("1.2.3.4").value == ip_from_string("1.2.3.4")

    def test_constructs_from_int(self):
        assert str(IPv4Address(0x01020304)) == "1.2.3.4"

    def test_ordering_is_numeric(self):
        assert IPv4Address("1.2.3.4") < IPv4Address("1.2.3.5")
        assert IPv4Address("2.0.0.0") > IPv4Address("1.255.255.255")

    def test_compares_with_int(self):
        assert IPv4Address("0.0.0.1") == 1
        assert IPv4Address("0.0.0.1") < 2

    def test_hashable_and_equal(self):
        assert {IPv4Address("1.1.1.1"), IPv4Address("1.1.1.1")} == {
            IPv4Address("1.1.1.1")
        }

    def test_int_conversion(self):
        assert int(IPv4Address("0.0.1.0")) == 256

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            IPv4Address(1 << 32)

    def test_repr_contains_dotted_quad(self):
        assert "1.2.3.4" in repr(IPv4Address("1.2.3.4"))
