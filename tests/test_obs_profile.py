"""Tests for phase profiling, stack sampling, and PROFILE documents."""

import json
import threading
import time

import pytest

from repro.bgp import Network, simulate
from repro.net.prefix import Prefix
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.obs.profile import (
    ENGINE_PHASES,
    PHASE_DECISION,
    PHASE_DISPATCH,
    NullProfiler,
    PhaseProfiler,
    build_profile_document,
    get_profiler,
    profiling,
    render_profile,
    set_profiler,
    write_profile,
)
from repro.obs.sampling import StackSampler, sampling


def _spin(seconds: float) -> None:
    """Burn CPU (not sleep) so both clocks advance."""
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        pass


class TestPhaseProfiler:
    def test_exclusive_attribution_no_double_counting(self):
        profiler = PhaseProfiler()
        with profiler.phase("outer"):
            _spin(0.02)
            with profiler.phase("inner"):
                _spin(0.02)
            _spin(0.01)
        outer = profiler.phases["outer"]
        inner = profiler.phases["inner"]
        # inner's time must NOT also appear in outer (self-time only)
        assert inner.wall_seconds == pytest.approx(0.02, abs=0.01)
        assert outer.wall_seconds == pytest.approx(0.03, abs=0.01)
        assert profiler.attributed_wall_seconds == pytest.approx(
            0.05, abs=0.02
        )

    def test_switch_replaces_top_of_stack(self):
        profiler = PhaseProfiler()
        profiler.push("a")
        _spin(0.01)
        profiler.switch("b")
        _spin(0.01)
        profiler.pop()
        assert profiler.phases["a"].entries == 1
        assert profiler.phases["b"].entries == 1
        assert profiler.phases["a"].wall_seconds == pytest.approx(
            0.01, abs=0.008
        )
        assert profiler.phases["b"].wall_seconds == pytest.approx(
            0.01, abs=0.008
        )

    def test_coverage_is_attributed_over_total(self):
        profiler = PhaseProfiler()
        with profiler.phase("work"):
            _spin(0.02)
        assert 0.0 < profiler.coverage() <= 1.0
        # against an explicit wall-clock equal to the attributed time
        assert profiler.coverage(
            profiler.attributed_wall_seconds
        ) == pytest.approx(1.0)
        assert profiler.coverage(0.0) == 0.0

    def test_time_outside_any_phase_is_unattributed(self):
        profiler = PhaseProfiler()
        _spin(0.02)  # no phase active
        with profiler.phase("work"):
            _spin(0.01)
        assert profiler.coverage() < 0.9

    def test_memory_tracing_records_phase_peaks(self):
        profiler = PhaseProfiler(trace_memory=True)
        try:
            with profiler.phase("alloc"):
                blob = [bytes(1024) for _ in range(512)]
            assert profiler.phases["alloc"].mem_peak_bytes > 0
            del blob
        finally:
            profiler.close()

    def test_report_sorted_by_wall_clock(self):
        profiler = PhaseProfiler()
        with profiler.phase("small"):
            _spin(0.005)
        with profiler.phase("big"):
            _spin(0.03)
        assert list(profiler.report()) == ["big", "small"]

    def test_null_profiler_is_disabled_noop(self):
        profiler = NullProfiler()
        assert not profiler.enabled
        profiler.push("x")
        profiler.switch("y")
        profiler.pop()
        with profiler.phase("z"):
            pass
        assert profiler.phases == {}

    def test_default_global_profiler_is_null(self):
        assert isinstance(get_profiler(), NullProfiler)

    def test_profiling_context_installs_and_restores(self):
        profiler = PhaseProfiler()
        before = get_profiler()
        with profiling(profiler) as installed:
            assert installed is profiler
            assert get_profiler() is profiler
        assert get_profiler() is before

    def test_set_profiler_none_restores_null(self):
        set_profiler(PhaseProfiler())
        set_profiler(None)
        assert isinstance(get_profiler(), NullProfiler)


class TestEngineIntegration:
    def _diamond(self):
        net = Network("diamond")
        routers = {asn: net.add_router(asn) for asn in (1, 2, 3, 4)}
        net.connect(routers[1], routers[2])
        net.connect(routers[1], routers[3])
        net.connect(routers[2], routers[4])
        net.connect(routers[3], routers[4])
        net.originate(routers[4], Prefix("10.0.0.0/24"))
        return net

    def test_simulation_attributes_engine_phases(self):
        registry = MetricsRegistry()
        previous_registry = set_registry(registry)
        try:
            with profiling(PhaseProfiler()) as profiler:
                simulate(self._diamond())
        finally:
            set_registry(previous_registry)
        for phase in (PHASE_DISPATCH, PHASE_DECISION):
            assert phase in profiler.phases
            assert profiler.phases[phase].entries > 0
        assert set(profiler.phases) <= set(ENGINE_PHASES)
        # per-prefix hot-path counters appear only under a profiler
        counters = registry.snapshot()["counters"]
        assert 'engine.prefix.messages{prefix="10.0.0.0/24"}' in counters
        assert counters["engine.messages"] > 0
        assert counters["engine.decisions"] > 0

    def test_unprofiled_simulation_registers_no_prefix_counters(self):
        registry = MetricsRegistry()
        previous_registry = set_registry(registry)
        try:
            simulate(self._diamond())
        finally:
            set_registry(previous_registry)
        counters = registry.snapshot()["counters"]
        assert not any(name.startswith("engine.prefix.") for name in counters)
        assert counters["engine.messages"] > 0

    def test_profiled_and_unprofiled_runs_agree(self):
        plain = self._diamond()
        simulate(plain)
        profiled = self._diamond()
        with profiling(PhaseProfiler()):
            simulate(profiled)
        prefix = Prefix("10.0.0.0/24")
        for rid in plain.routers:
            a = plain.routers[rid].best(prefix)
            b = profiled.routers[rid].best(prefix)
            assert (a.as_path if a else None) == (b.as_path if b else None)


class TestStackSampler:
    def test_thread_mode_samples_the_calling_thread(self):
        with sampling(StackSampler(interval=0.001)) as sampler:
            _spin(0.06)
        assert sampler.samples > 0
        assert sampler.stacks
        joined = " ".join(
            ";".join(stack) for stack in sampler.stacks
        )
        assert "test_obs_profile:_spin" in joined

    def test_folded_output_format(self, tmp_path):
        sampler = StackSampler(interval=0.001)
        with sampling(sampler):
            _spin(0.05)
        path = tmp_path / "stacks.folded"
        lines_written = sampler.write_folded(path)
        lines = path.read_text().splitlines()
        assert lines_written == len(lines) > 0
        for line in lines:
            stack, _, count = line.rpartition(" ")
            assert stack  # frames present
            assert int(count) >= 1
            for frame in stack.split(";"):
                assert ":" in frame  # module:function tokens
        # counts add up to the sample total
        assert sum(int(l.rpartition(" ")[2]) for l in lines) == sampler.samples

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            StackSampler(mode="perf")
        with pytest.raises(ValueError):
            StackSampler(interval=0.0)

    def test_double_start_refused_stop_idempotent(self):
        sampler = StackSampler(interval=0.01)
        sampler.start()
        with pytest.raises(RuntimeError):
            sampler.start()
        sampler.stop()
        sampler.stop()

    def test_signal_mode_requires_main_thread(self):
        errors = []

        def worker():
            try:
                StackSampler(mode="signal").start()
            except RuntimeError as error:
                errors.append(error)

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert errors

    def test_summary_describes_the_run(self):
        sampler = StackSampler(interval=0.002)
        with sampling(sampler):
            _spin(0.02)
        summary = sampler.summary("out.folded")
        assert summary["mode"] == "thread"
        assert summary["samples"] == sampler.samples
        assert summary["folded"] == "out.folded"


class TestProfileDocument:
    def _document(self):
        registry = MetricsRegistry()
        registry.counter("engine.messages").inc(42)
        profiler = PhaseProfiler()
        with profiler.phase("parse"):
            _spin(0.01)
        return build_profile_document(
            profiler,
            wall_seconds=0.02,
            cpu_seconds=0.02,
            workload={"name": "refine", "dump": "x.dump"},
            meta={"git_sha": "abc"},
            registry=registry,
        )

    def test_schema_and_flat_metrics(self):
        document = self._document()
        assert document["schema"] == 1
        assert document["workload"]["name"] == "refine"
        metrics = document["metrics"]
        assert metrics["counter.engine.messages"] == 42
        assert "phase.parse.wall_seconds" in metrics
        assert 0.0 <= metrics["coverage"] <= 1.0
        assert document["meta"]["git_sha"] == "abc"

    def test_write_and_reload(self, tmp_path):
        document = self._document()
        path = write_profile(document, tmp_path / "PROFILE.json")
        assert json.loads(path.read_text()) == document

    def test_render_mentions_phases_and_coverage(self):
        text = render_profile(self._document())
        assert "workload=refine" in text
        assert "parse" in text
        assert "coverage=" in text
