"""Unit tests for the structured trace layer (repro.obs.trace)."""

import io
import json

import pytest

from repro.obs.trace import (
    EVENT_DECISION,
    JsonlTracer,
    NullTracer,
    RecordingTracer,
    get_tracer,
    set_tracer,
    tracing,
)


class TestNullTracer:
    def test_is_the_default(self):
        assert isinstance(get_tracer(), NullTracer)
        assert get_tracer().enabled is False

    def test_operations_are_noops(self):
        tracer = NullTracer()
        tracer.event(EVENT_DECISION, router="r1")
        with tracer.span("phase") as span_id:
            assert span_id == 0
        tracer.close()

    def test_span_is_allocation_free(self):
        tracer = NullTracer()
        assert tracer.span("a") is tracer.span("b")


class TestRecordingTracer:
    def test_event_records_type_and_fields(self):
        tracer = RecordingTracer()
        tracer.event(EVENT_DECISION, router="AS1.r1", candidates=2)
        (event,) = tracer.events()
        assert event["kind"] == "event"
        assert event["type"] == EVENT_DECISION
        assert event["router"] == "AS1.r1"
        assert event["candidates"] == 2
        assert event["span"] is None

    def test_spans_nest_and_stamp_events(self):
        tracer = RecordingTracer()
        with tracer.span("outer") as outer_id:
            with tracer.span("inner") as inner_id:
                tracer.event("tick")
        outer, inner = tracer.spans()
        assert outer["parent"] is None
        assert inner["parent"] == outer_id
        (event,) = tracer.events("tick")
        assert event["span"] == inner_id
        ends = [r for r in tracer.records if r["kind"] == "span-end"]
        assert [end["span"] for end in ends] == [inner_id, outer_id]
        assert all(end["elapsed"] >= 0 for end in ends)

    def test_span_ids_are_unique(self):
        tracer = RecordingTracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        ids = [record["span"] for record in tracer.spans()]
        assert len(set(ids)) == 2

    def test_filters_by_name_and_type(self):
        tracer = RecordingTracer()
        with tracer.span("keep"):
            tracer.event("x")
            tracer.event("y")
        assert len(tracer.spans("keep")) == 1
        assert tracer.spans("other") == []
        assert len(tracer.events("x")) == 1


class TestJsonlTracer:
    def test_writes_one_json_object_per_line(self):
        sink = io.StringIO()
        tracer = JsonlTracer(sink)
        with tracer.span("phase", detail=1):
            tracer.event("tick", n=3)
        lines = sink.getvalue().strip().splitlines()
        assert len(lines) == 3 == tracer.records_written
        kinds = [json.loads(line)["kind"] for line in lines]
        assert kinds == ["span-start", "event", "span-end"]

    def test_path_sink_owned_and_closed(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTracer(path) as tracer:
            tracer.event("tick")
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(records) == 1
        assert records[0]["type"] == "tick"

    def test_stream_sink_left_open(self):
        sink = io.StringIO()
        tracer = JsonlTracer(sink)
        tracer.event("tick")
        tracer.close()
        assert not sink.closed


class TestTracingContext:
    def test_installs_and_restores(self):
        tracer = RecordingTracer()
        before = get_tracer()
        with tracing(tracer) as active:
            assert active is tracer
            assert get_tracer() is tracer
        assert get_tracer() is before

    def test_restores_on_exception(self):
        before = get_tracer()
        with pytest.raises(RuntimeError):
            with tracing(RecordingTracer()):
                raise RuntimeError("boom")
        assert get_tracer() is before

    def test_set_tracer_none_restores_null(self):
        previous = set_tracer(RecordingTracer())
        try:
            set_tracer(None)
            assert isinstance(get_tracer(), NullTracer)
        finally:
            set_tracer(previous)
