"""Tests for iBGP route reflection (RFC 4456)."""

from repro.bgp import Network, simulate
from repro.bgp.attributes import RouteSource
from repro.net.prefix import Prefix

PREFIX = Prefix("10.8.0.0/24")


def build_cluster(n_clients=3, n_reflectors=1, chain_igp=True):
    """One AS with a reflection cluster; client[0] has the external route."""
    net = Network()
    reflectors = [net.add_router(10) for _ in range(n_reflectors)]
    clients = [net.add_router(10) for _ in range(n_clients)]
    node = net.ases[10]
    if chain_igp:
        all_routers = reflectors + clients
        for a, b in zip(all_routers, all_routers[1:]):
            node.igp.add_link(a.router_id, b.router_id, 1)
    net.ibgp_route_reflection(reflectors, clients)
    origin = net.add_router(20)
    net.connect(clients[0], origin)
    net.originate(origin, PREFIX)
    return net, reflectors, clients, origin


class TestReflection:
    def test_client_route_reaches_other_clients(self):
        net, reflectors, clients, _ = build_cluster()
        simulate(net)
        # clients 1 and 2 have no eBGP session and no direct iBGP to
        # client 0: only reflection can deliver the route
        for client in clients[1:]:
            best = client.best(PREFIX)
            assert best is not None
            assert best.source is RouteSource.IBGP
            assert best.as_path == (20,)

    def test_reflected_route_carries_originator_and_cluster(self):
        net, reflectors, clients, _ = build_cluster()
        simulate(net)
        best = clients[1].best(PREFIX)
        assert best.originator_id == clients[0].router_id
        assert reflectors[0].router_id in best.cluster_list

    def test_no_reflection_without_rr_flag(self):
        """A plain star topology (no rr_clients) does not propagate."""
        net = Network()
        hub = net.add_router(10)
        spokes = [net.add_router(10) for _ in range(2)]
        for spoke in spokes:
            net.connect(hub, spoke)
        origin = net.add_router(20)
        net.connect(spokes[0], origin)
        net.originate(origin, PREFIX)
        simulate(net)
        assert spokes[1].best(PREFIX) is None

    def test_originator_loop_prevention(self):
        """The reflected route must not be re-installed at its originator."""
        net, reflectors, clients, _ = build_cluster()
        simulate(net)
        injector = clients[0]
        reflected_back = [
            route
            for route in injector.rib_in_routes(PREFIX)
            if route.originator_id == injector.router_id
        ]
        assert not reflected_back

    def test_redundant_reflectors_converge(self):
        """Two reflectors serving the same clients must not loop updates."""
        net, reflectors, clients, _ = build_cluster(n_reflectors=2)
        stats = simulate(net)
        assert stats.messages < 200
        for client in clients[1:]:
            assert client.best(PREFIX) is not None

    def test_cluster_list_tie_break_prefers_fewer_hops(self):
        """A route reflected once beats the same route reflected twice."""
        net = Network()
        top = net.add_router(10)      # second-level reflector
        mid = net.add_router(10)      # first-level reflector, client of top
        injector = net.add_router(10)
        observer = net.add_router(10)
        node = net.ases[10]
        for a, b in ((top, mid), (mid, injector), (top, observer), (mid, observer)):
            node.igp.add_link(a.router_id, b.router_id, 1)
        # mid reflects for injector and observer; top reflects for mid and observer
        net.ibgp_route_reflection([mid], [injector, observer])
        net.ibgp_route_reflection([top], [mid, observer])
        origin = net.add_router(20)
        net.connect(injector, origin)
        net.originate(origin, PREFIX)
        simulate(net)
        best = observer.best(PREFIX)
        assert best is not None
        # via mid: cluster_list length 1; via top: length 2
        assert len(best.cluster_list) == 1
        assert best.peer_router == mid.router_id

    def test_ebgp_export_strips_rr_attributes(self):
        net, reflectors, clients, _ = build_cluster()
        downstream = net.add_router(30)
        net.connect(clients[1], downstream)
        simulate(net)
        received = list(downstream.rib_in_routes(PREFIX))
        assert received
        for route in received:
            assert route.originator_id == 0
            assert route.cluster_list == ()

    def test_cross_as_reflection_rejected(self):
        import pytest

        from repro.errors import TopologyError

        net = Network()
        a = net.add_router(1)
        b = net.add_router(2)
        with pytest.raises(TopologyError):
            net.ibgp_route_reflection([a], [b])
