"""Tests for the incremental safety-certification engine.

The load-bearing property: after ANY sequence of tracked model edits,
the incrementally maintained certificate store is bit-for-bit identical
(findings, report JSON, store fingerprint) to a store built from scratch
over the final network.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    GLOBAL_KEY,
    CertificateStore,
    analyze_network,
    certify_network,
)
from repro.analysis.findings import Finding, Severity
from repro.bgp.policy import Action, Clause, Match
from repro.core.build import build_initial_model
from repro.core.refine import Refiner, RefinementConfig
from repro.data.synthesis import SyntheticConfig, prefix_for_asn, synthesize_internet
from repro.errors import CertificateError
from repro.net.aspath import ASPath
from repro.obs.metrics import get_registry
from repro.resilience.checkpoint import certificate_store_path
from repro.resilience.faults import inject_dispute_wheel
from repro.topology.dataset import ObservedRoute, PathDataset


def small_internet():
    internet = synthesize_internet(
        SyntheticConfig(seed=11, n_level1=3, n_level2=5, n_other=8, n_stub=20)
    )
    return internet.network


def refine_style_edit(network, router, prefix, tag):
    """Install refine-shaped clauses on every eBGP session into ``router``."""
    installed = 0
    for session in router.sessions_in:
        if not session.is_ebgp:
            continue
        session.ensure_import_map().append(
            Clause(Match(prefix=prefix), Action.PERMIT,
                   set_med=10 + installed, tag=tag)
        )
        session.ensure_export_map().append(
            Clause(Match(prefix=prefix, path_len_lt=4), Action.DENY, tag=tag)
        )
        installed += 1
    return installed


class TestFullCertification:
    def test_matches_the_analyzer_passes(self):
        network = small_internet()
        store = certify_network(network)
        direct = analyze_network(network, passes=("safety", "policy"))
        certified = {json.dumps(f.to_dict(), sort_keys=True)
                     for f in store.report().findings}
        analyzed = {json.dumps(f.to_dict(), sort_keys=True)
                    for f in direct.findings}
        assert certified == analyzed

    def test_two_fresh_stores_are_bit_identical(self):
        network = small_internet()
        a, b = certify_network(network), certify_network(network)
        assert a.store_fingerprint() == b.store_fingerprint()
        assert a.report().to_json() == b.report().to_json()

    def test_recertify_without_changes_is_all_reuse(self):
        network = small_internet()
        store = certify_network(network)
        total = store.last_stats.total
        store.certify(network)
        assert store.last_stats.candidates == 0
        assert store.last_stats.reused == total

    def test_every_prefix_and_the_global_key_are_certified(self):
        network = small_internet()
        store = certify_network(network)
        keys = set(store.certificates)
        assert GLOBAL_KEY in keys
        assert {str(p) for p in network.prefixes()} <= keys


class TestIncrementalInvalidation:
    def test_one_install_recertifies_only_the_touched_prefix(self):
        network = small_internet()
        store = certify_network(network)
        prefix = sorted(network.prefixes())[0]
        router = max(
            (s.dst for s in network.ebgp_sessions()),
            key=lambda r: len(list(r.sessions_in)),
        )
        assert refine_style_edit(network, router, prefix, "edit-0") > 0
        store.invalidate_policy(router.router_id, prefix)
        store.certify(network)
        stats = store.last_stats
        assert stats.misses >= 1
        assert stats.invalidated_fraction < 0.5
        fresh = certify_network(network)
        assert store.store_fingerprint() == fresh.store_fingerprint()
        assert store.report().to_json() == fresh.report().to_json()

    def test_unrelated_certificates_survive_as_objects(self):
        network = small_internet()
        store = certify_network(network)
        untouched_key = sorted(
            k for k in store.certificates if k != GLOBAL_KEY
        )[-1]
        before = store.certificates[untouched_key]
        prefix = sorted(network.prefixes())[0]
        assert str(prefix) != untouched_key
        router = next(iter(network.ebgp_sessions())).dst
        refine_style_edit(network, router, prefix, "edit-1")
        store.invalidate_policy(router.router_id, prefix)
        store.certify(network)
        assert store.certificates[untouched_key] is before

    def test_over_invalidation_is_settled_by_fingerprints(self):
        network = small_internet()
        store = certify_network(network)
        # dirty everything without changing anything: every candidate must
        # land as a fingerprint hit, zero recomputes
        store.invalidate_all()
        store.certify(network)
        assert store.last_stats.misses == 0
        assert store.last_stats.hits == store.last_stats.total

    def test_dispute_wheel_appears_and_resolves_incrementally(self):
        routes = [
            ObservedRoute(f"p9-{i}", 9, prefix_for_asn(4), ASPath(path))
            for i, path in enumerate(
                ((9, 1, 4), (9, 2, 4), (9, 3, 4),
                 (9, 1, 2, 4), (9, 2, 3, 4), (9, 3, 1, 4))
            )
        ]
        model = build_initial_model(PathDataset(routes))
        network = model.network
        store = certify_network(network)
        assert store.unsafe_prefixes() == []
        wheel_prefix = model.canonical_prefix(4)
        inject_dispute_wheel(network, wheel_prefix, (1, 2, 3))
        # the injection touches the import maps of the wheel ASes
        for asn in (1, 2, 3):
            for router in network.as_routers(asn):
                store.invalidate_policy(router.router_id, wheel_prefix)
        store.certify(network)
        assert store.unsafe_prefixes() == [wheel_prefix]
        fresh = certify_network(network)
        assert store.report().to_json() == fresh.report().to_json()


class TestSameKeyClauseChange:
    def test_removing_one_of_two_same_prefix_clauses_is_detected(self):
        # Regression: a per-prefix clause edit used to be invisible when
        # the session kept ANOTHER clause for the same prefix — the
        # session's key set did not change, so the key was never
        # re-fingerprinted and its certificate went stale.  Found by
        # hypothesis as edits=[(0, 0, 0), (1, 0, 1)]: install tagged
        # clauses for prefix A, then remove them while invalidating a
        # DIFFERENT prefix.
        network = small_internet()
        store = certify_network(network)
        prefixes = sorted(network.prefixes())
        routers = sorted(
            {s.dst.router_id: s.dst for s in network.ebgp_sessions()}.items()
        )
        router = routers[0][1]
        prefix_a, prefix_b = prefixes[0], prefixes[1]

        refine_style_edit(network, router, prefix_a, "edit-0")
        store.invalidate_policy(router.router_id, prefix_a)
        store.certify(network)
        assert (
            store.store_fingerprint()
            == certify_network(network).store_fingerprint()
        )

        for session in router.sessions_in:
            if session.import_map is not None:
                session.import_map.remove_if(
                    lambda clause: clause.tag is not None
                    and clause.tag.startswith("edit-")
                )
        store.invalidate_policy(router.router_id, prefix_b)
        store.certify(network)
        fresh = certify_network(network)
        assert store.store_fingerprint() == fresh.store_fingerprint()
        assert store.report().to_json() == fresh.report().to_json()


NUM_EDITS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),   # op
        st.integers(min_value=0, max_value=10**6),  # router pick
        st.integers(min_value=0, max_value=10**6),  # prefix pick
    ),
    min_size=1,
    max_size=6,
)


class TestEditSequenceProperty:
    @settings(max_examples=20, deadline=None)
    @given(edits=NUM_EDITS)
    def test_incremental_always_equals_from_scratch(self, edits):
        network = small_internet()
        store = certify_network(network)
        prefixes = sorted(network.prefixes())
        for step, (op, router_pick, prefix_pick) in enumerate(edits):
            routers = sorted(
                {s.dst.router_id: s.dst for s in network.ebgp_sessions()}.items()
            )
            router = routers[router_pick % len(routers)][1]
            prefix = prefixes[prefix_pick % len(prefixes)]
            tag = f"edit-{step}"
            if op == 0:
                refine_style_edit(network, router, prefix, tag)
                store.invalidate_policy(router.router_id, prefix)
            elif op == 1:
                for session in router.sessions_in:
                    if session.import_map is not None:
                        session.import_map.remove_if(
                            lambda clause: clause.tag is not None
                            and clause.tag.startswith("edit-")
                        )
                store.invalidate_policy(router.router_id, prefix)
            elif op == 2:
                # prefix-agnostic local-pref clause: joins EVERY prefix graph
                for session in router.sessions_in:
                    if session.is_ebgp:
                        session.ensure_import_map().append(
                            Clause(Match(), Action.PERMIT,
                                   set_local_pref=200 + step, tag=tag)
                        )
                        break
                store.invalidate_policy(router.router_id, None)
            else:
                clone = network.duplicate_router(router)
                store.invalidate_router(clone)
            store.certify(network)
            fresh = certify_network(network)
            assert store.store_fingerprint() == fresh.store_fingerprint(), (
                f"diverged after step {step} op {op}"
            )
            assert store.report().to_json() == fresh.report().to_json()


class TestPersistence:
    def test_save_load_round_trip_preserves_fingerprints(self, tmp_path):
        network = small_internet()
        store = certify_network(network)
        path = tmp_path / "model.certs"
        store.save(path)
        loaded = CertificateStore.load(path)
        assert loaded.store_fingerprint() == store.store_fingerprint()
        assert loaded.report().to_json() == store.report().to_json()
        # a loaded store is fully dirty but settles to all-hits
        loaded.certify(network)
        assert loaded.last_stats.misses == 0
        assert loaded.store_fingerprint() == store.store_fingerprint()

    def test_load_rejects_garbage_and_wrong_format(self, tmp_path):
        path = tmp_path / "bad.certs"
        path.write_text("not json")
        with pytest.raises(CertificateError):
            CertificateStore.load(path)
        path.write_text(json.dumps({"format": "something/else/v9"}))
        with pytest.raises(CertificateError):
            CertificateStore.load(path)

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(CertificateError):
            CertificateStore.load(tmp_path / "absent.certs")


class TestMetrics:
    def test_hits_misses_and_invalidations_are_counted(self):
        registry = get_registry()
        registry.reset()
        network = small_internet()
        store = certify_network(network)
        assert registry.counter("certify.misses").value > 0
        store.invalidate_all()
        store.certify(network)
        assert registry.counter("certify.hits").value >= store.last_stats.total
        prefix = sorted(network.prefixes())[0]
        store.invalidate_policy(1, prefix)
        assert registry.counter("certify.invalidations").value > 0


class TestRefinerIntegration:
    def _training(self):
        routes = []
        for path in ((9, 1, 4), (9, 2, 4), (9, 3, 4),
                     (9, 1, 2, 4), (9, 2, 3, 4), (9, 3, 1, 4)):
            routes.append(
                ObservedRoute("p9", 9, prefix_for_asn(4), ASPath(path))
            )
        return PathDataset(routes)

    def test_lint_gate_persists_and_resumes_certificates(self, tmp_path):
        checkpoint = tmp_path / "refine.ckpt"
        model = build_initial_model(self._training())
        wheel = model.canonical_prefix(4)
        inject_dispute_wheel(model.network, wheel, (1, 2, 3))
        refiner = Refiner(
            model, self._training(),
            RefinementConfig(lint_gate=True, checkpoint_every=1),
        )
        result = refiner.run(checkpoint=checkpoint)
        assert result.converged
        assert refiner.gated_prefixes == [wheel]
        store_path = certificate_store_path(checkpoint)
        assert store_path.exists()
        saved_fingerprint = CertificateStore.load(
            store_path
        ).store_fingerprint()

        model2 = build_initial_model(self._training())
        inject_dispute_wheel(model2.network, model2.canonical_prefix(4),
                             (1, 2, 3))
        refiner2 = Refiner(
            model2, self._training(),
            RefinementConfig(lint_gate=True, checkpoint_every=1),
        )
        result2 = refiner2.run(checkpoint=checkpoint)
        assert result2.converged
        assert refiner2.certificates is not None
        assert refiner2.certificates.store_fingerprint() == saved_fingerprint

    def test_gate_certificates_match_a_fresh_pass_after_refinement(self):
        model = build_initial_model(self._training())
        refiner = Refiner(
            model, self._training(), RefinementConfig(lint_gate=True)
        )
        refiner.run()
        assert refiner.certificates is not None
        refiner.certificates.certify(refiner.model.network)
        fresh = certify_network(refiner.model.network)
        assert (refiner.certificates.store_fingerprint()
                == fresh.store_fingerprint())
        assert (refiner.certificates.report().to_json()
                == fresh.report().to_json())


class TestOmittedCount:
    def _big_cycle_findings(self):
        from repro.analysis.safety import (
            PreferenceEdge,
            local_pref_findings_for_prefix,
        )

        prefix = prefix_for_asn(1)
        count = 15
        edges = [
            PreferenceEdge(
                prefix=prefix,
                router_id=i + 1,
                asn=i + 1,
                neighbor_router_id=(i + 1) % count + 1,
                neighbor_asn=(i + 1) % count + 1,
                kind="local-pref",
                clause=f"clause {i} prefers AS{(i + 1) % count + 1}",
            )
            for i in range(count)
        ]
        return local_pref_findings_for_prefix(prefix, edges)

    def test_truncated_clause_lists_carry_omitted_count(self):
        findings = self._big_cycle_findings()
        assert len(findings) == 1
        finding = findings[0]
        assert finding.severity is Severity.ERROR
        assert len(finding.clauses) == 12
        assert finding.omitted_count == 3

    def test_text_and_json_renderers_show_the_omission(self):
        finding = self._big_cycle_findings()[0]
        assert "(+3 more not shown)" in finding.render()
        assert finding.to_dict()["omitted_count"] == 3

    def test_finding_round_trips_through_json(self):
        finding = self._big_cycle_findings()[0]
        clone = Finding.from_dict(
            json.loads(json.dumps(finding.to_dict()))
        )
        assert clone == finding

    def test_short_clause_lists_omit_nothing(self):
        finding = Finding(
            rule="x", severity=Severity.INFO, message="m", clauses=("a",)
        )
        assert finding.omitted_count == 0
        assert "not shown" not in finding.render()
        assert finding.to_dict()["omitted_count"] == 0
