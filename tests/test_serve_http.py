"""Tests for the ``repro serve`` HTTP API and its shutdown contract."""

import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.net.prefix import prefix_for_asn
from repro.obs.metrics import get_registry
from repro.serve import (
    AdmissionController,
    PredictionServer,
    QueryEngine,
    build_artifact,
)


@pytest.fixture(autouse=True)
def clean_registry():
    get_registry().reset()
    yield
    get_registry().reset()


@pytest.fixture
def artifact():
    return build_artifact(
        origins={4: prefix_for_asn(4), 7: prefix_for_asn(7)},
        observers=[1, 2, 3, 4],
        paths={
            (4, 1): {(1, 2, 4), (1, 3, 4)},
            (4, 2): {(2, 4)},
        },
        quarantined=[prefix_for_asn(7)],
        meta={"argv": ["test"]},
    )


@pytest.fixture
def server(artifact):
    """A PredictionServer accepting on an ephemeral port, drained at exit."""
    engine = QueryEngine(artifact, cache_size=16)
    instance = PredictionServer(engine, host="127.0.0.1", port=0)
    loop = threading.Thread(target=instance.serve_forever, daemon=True)
    loop.start()
    yield instance
    instance.drain()
    loop.join(timeout=10)


def get(server, path):
    """GET a path; returns (status, parsed JSON body) without raising."""
    url = f"http://{server.address}{path}"
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error)


class TestEndpoints:
    def test_paths_ok(self, server):
        status, body = get(server, "/paths?origin=4&observer=1")
        assert status == 200
        assert body["reachable"] is True
        assert body["paths"] == [[1, 2, 4], [1, 3, 4]]

    def test_diversity_ok(self, server):
        status, body = get(server, "/diversity?origin=4&observer=1")
        assert status == 200
        assert body["path_count"] == 2
        assert body["multipath"] is True

    def test_lookup_ok(self, server):
        target = str(prefix_for_asn(4)).split("/")[0]
        status, body = get(server, f"/lookup?target={target}&observer=2")
        assert status == 200
        assert body["origin"] == 4
        assert body["paths"] == [[2, 4]]

    def test_unknown_origin_404(self, server):
        status, body = get(server, "/paths?origin=999&observer=1")
        assert status == 404
        assert body["error"]["kind"] == "unknown-origin"
        assert "999" in body["error"]["message"]

    def test_unknown_observer_404(self, server):
        status, body = get(server, "/paths?origin=4&observer=999")
        assert status == 404
        assert body["error"]["kind"] == "unknown-observer"

    def test_non_numeric_asn_400(self, server):
        status, body = get(server, "/paths?origin=abc&observer=1")
        assert status == 400
        assert body["error"]["kind"] == "bad-target"

    def test_missing_parameter_400(self, server):
        status, body = get(server, "/paths?origin=4")
        assert status == 400
        assert "observer" in body["error"]["message"]

    def test_quarantined_origin_503(self, server):
        status, body = get(server, "/paths?origin=7&observer=1")
        assert status == 503
        assert body["error"]["kind"] == "quarantined"

    def test_unknown_route_404(self, server):
        status, body = get(server, "/frobnicate")
        assert status == 404
        assert body["error"]["kind"] == "unknown-route"

    def test_healthz(self, server):
        status, body = get(server, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["artifact"]["origins"] == 2
        assert body["artifact"]["quarantined"] == 1
        assert "cache" in body

    def test_metrics_snapshot(self, server):
        assert get(server, "/paths?origin=4&observer=1")[0] == 200
        status, body = get(server, "/metrics")
        assert status == 200
        assert body["counters"]["serve.queries"] >= 1
        assert body["counters"]["serve.http_responses"] >= 1


class TestPrometheusExposition:
    def _get_text(self, server, path, accept=None):
        request = urllib.request.Request(f"http://{server.address}{path}")
        if accept:
            request.add_header("Accept", accept)
        with urllib.request.urlopen(request, timeout=10) as response:
            return (
                response.status,
                response.headers.get("Content-Type"),
                response.read().decode("utf-8"),
            )

    def test_format_parameter_serves_prometheus_text(self, server):
        assert get(server, "/paths?origin=4&observer=1")[0] == 200
        status, content_type, text = self._get_text(
            server, "/metrics?format=prometheus"
        )
        assert status == 200
        assert content_type.startswith("text/plain")
        assert "# TYPE repro_serve_queries_total counter" in text
        assert "repro_serve_queries_total" in text
        assert "# TYPE repro_serve_request_seconds summary" in text
        assert 'quantile="0.99"' in text

    def test_accept_header_negotiates_prometheus(self, server):
        status, content_type, text = self._get_text(
            server, "/metrics", accept="text/plain"
        )
        assert status == 200
        assert content_type.startswith("text/plain")
        assert "# TYPE" in text

    def test_default_stays_json(self, server):
        status, body = get(server, "/metrics")
        assert status == 200
        assert "counters" in body  # JSON snapshot, not text

    def test_explicit_json_format(self, server):
        status, body = get(server, "/metrics?format=json")
        assert status == 200
        assert "counters" in body

    def test_unknown_format_400(self, server):
        status, body = get(server, "/metrics?format=xml")
        assert status == 400
        assert "xml" in body["error"]["message"]


class TestConcurrency:
    def test_concurrent_queries_share_the_lru(self, server):
        results = []
        errors = []

        def hammer():
            try:
                for _ in range(10):
                    results.append(get(server, "/paths?origin=4&observer=1"))
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=hammer) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(results) == 60
        assert all(status == 200 for status, _ in results)
        stats = server.engine.cache_stats()
        assert stats["queries"] == 60
        assert stats["misses"] == 1  # one cold compute, 59 LRU hits
        assert stats["hits"] == 59


class TestResponseCounting:
    """serve.http_responses counts successes ONLY; errors are separate.

    PR-9 satellite: the counter used to be bumped once in the handler
    and again in the error path, double-counting every failed request.
    """

    @staticmethod
    def _settled(counter, expected, deadline=5.0):
        """Counters bump after the response bytes leave the socket, so a
        fast client can race them; wait for the dust to settle."""
        limit = time.monotonic() + deadline
        while counter.value < expected and time.monotonic() < limit:
            time.sleep(0.01)
        return counter.value

    def test_success_and_error_counters_are_disjoint(self, server):
        assert get(server, "/paths?origin=4&observer=1")[0] == 200
        assert get(server, "/paths?origin=4&observer=2")[0] == 200
        assert get(server, "/paths?origin=999&observer=1")[0] == 404
        assert get(server, "/frobnicate")[0] == 404
        registry = get_registry()
        successes = self._settled(
            registry.counter("serve.http_responses"), 2
        )
        errors = self._settled(registry.counter("serve.http_errors"), 2)
        assert successes == 2  # exactly the two 200s, nothing double
        assert errors == 2

    def test_metrics_endpoint_counts_itself_once(self, server):
        get(server, "/metrics")
        assert get_registry().counter("serve.http_errors").value == 0
        # Exactly one success recorded for the /metrics hit itself.
        assert self._settled(
            get_registry().counter("serve.http_responses"), 1
        ) == 1


class TestClientDisconnects:
    def test_reset_mid_request_is_counted_not_raised(self, artifact):
        engine = QueryEngine(artifact, cache_size=16)
        instance = PredictionServer(
            engine, host="127.0.0.1", port=0, handler_delay=0.3
        )
        loop = threading.Thread(target=instance.serve_forever, daemon=True)
        loop.start()
        try:
            host, port = instance.server_address[:2]
            client = socket.create_connection((host, port), timeout=5)
            client.sendall(
                b"GET /paths?origin=4&observer=1 HTTP/1.1\r\n"
                b"Host: test\r\n\r\n"
            )
            # RST the connection while the handler is still sleeping.
            client.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER,
                b"\x01\x00\x00\x00\x00\x00\x00\x00",
            )
            client.close()
            counter = get_registry().counter("serve.client_disconnects")
            deadline = time.monotonic() + 10.0
            while counter.value == 0 and time.monotonic() < deadline:
                time.sleep(0.02)
            assert counter.value >= 1, "disconnect was not counted"
            # The server is still healthy for the next client.
            assert get(instance, "/healthz")[0] == 200
        finally:
            instance.drain()
            loop.join(timeout=10)


class TestDrainingState:
    @pytest.fixture
    def gated_server(self, artifact):
        """A server with an admission gate (draining 503s need one)."""
        engine = QueryEngine(artifact, cache_size=16)
        instance = PredictionServer(
            engine, host="127.0.0.1", port=0,
            admission=AdmissionController(max_inflight=8),
        )
        loop = threading.Thread(target=instance.serve_forever, daemon=True)
        loop.start()
        yield instance
        instance.drain()
        loop.join(timeout=10)

    def test_readyz_ok_when_serving(self, gated_server):
        status, body = get(gated_server, "/readyz")
        assert status == 200
        assert body == {"ready": True, "status": "ok"}

    def test_draining_flips_healthz_readyz_and_sheds_queries(
        self, gated_server
    ):
        # Flag the state without closing sockets, so we can still probe.
        gated_server.draining.set()
        status, body = get(gated_server, "/healthz")
        assert status == 503
        assert body["status"] == "draining"
        status, body = get(gated_server, "/readyz")
        assert status == 503
        assert body == {"ready": False, "status": "draining"}
        status, body = get(gated_server, "/paths?origin=4&observer=1")
        assert status == 503
        assert body["error"]["kind"] == "draining"
        gated_server.draining.clear()  # let the fixture drain cleanly

    def test_drain_retry_after_header(self, gated_server):
        gated_server.draining.set()
        url = (
            f"http://{gated_server.address}/paths?origin=4&observer=1"
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(url, timeout=10)
        assert info.value.headers["Retry-After"] == "1"
        gated_server.draining.clear()


class TestGracefulDrain:
    def test_slow_inflight_requests_finish_during_drain(self, artifact):
        """SIGTERM semantics: in-flight answers complete, none dropped."""
        engine = QueryEngine(artifact, cache_size=16)
        instance = PredictionServer(
            engine, host="127.0.0.1", port=0, handler_delay=0.5
        )
        loop = threading.Thread(target=instance.serve_forever, daemon=True)
        loop.start()
        outcomes = []

        def slow_query():
            outcomes.append(get(instance, "/paths?origin=4&observer=1"))

        clients = [threading.Thread(target=slow_query) for _ in range(3)]
        for client in clients:
            client.start()
        time.sleep(0.2)  # all three are mid-handler_delay now
        instance.drain()  # blocks until the loop stops + handlers finish
        for client in clients:
            client.join(timeout=15)
        loop.join(timeout=10)
        assert len(outcomes) == 3
        assert all(status == 200 for status, _ in outcomes), outcomes


class TestSignalHandlerRestoration:
    def test_bind_failure_leaves_handlers_untouched(self, artifact):
        """run_server must not clobber signal handlers when it cannot
        even bind — the server is constructed before handlers are
        installed, so EADDRINUSE propagates with handlers intact."""
        import signal

        from repro.serve import run_server

        engine = QueryEngine(artifact, cache_size=16)
        sentinel_term = lambda signum, frame: None  # noqa: E731
        sentinel_int = lambda signum, frame: None  # noqa: E731
        previous_term = signal.signal(signal.SIGTERM, sentinel_term)
        previous_int = signal.signal(signal.SIGINT, sentinel_int)
        squatter = socket.socket()
        try:
            squatter.bind(("127.0.0.1", 0))
            squatter.listen(1)
            port = squatter.getsockname()[1]
            with pytest.raises(OSError):
                run_server(engine, host="127.0.0.1", port=port)
            assert signal.getsignal(signal.SIGTERM) is sentinel_term
            assert signal.getsignal(signal.SIGINT) is sentinel_int
        finally:
            squatter.close()
            signal.signal(signal.SIGTERM, previous_term)
            signal.signal(signal.SIGINT, previous_int)


class TestServeCommand:
    """End-to-end: ``repro serve`` drains cleanly on SIGTERM (exit 0)."""

    @pytest.fixture(scope="class")
    def artifact_file(self, tmp_path_factory):
        from repro.cli import main

        base = tmp_path_factory.mktemp("serve")
        dump = base / "snap.dump"
        model = base / "model.cbgp"
        artifact = base / "pred.artifact"
        assert main(
            ["synthesize", "--seed", "5", "--scale", "0.15",
             "--points", "8", "--out", str(dump)]
        ) == 0
        assert main(["refine", str(dump), "--out", str(model)]) == 0
        assert main(
            ["compile-artifact", str(model), "--out", str(artifact)]
        ) == 0
        return artifact

    def test_sigterm_drains_to_exit_0(self, artifact_file, tmp_path):
        import os
        import signal
        import subprocess
        import sys

        report = tmp_path / "serve_health.json"
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", str(artifact_file),
             "--port", "0", "--stats-report", str(report)],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
        )
        try:
            banner = process.stdout.readline().strip()
            assert banner.startswith("serving predictions on http://")
            address = banner.rsplit("http://", 1)[1]
            with urllib.request.urlopen(
                f"http://{address}/healthz", timeout=10
            ) as response:
                assert json.load(response)["status"] == "ok"
            process.send_signal(signal.SIGTERM)
            code = process.wait(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
        assert code == 0
        health = json.loads(report.read_text())
        assert health["metrics"]["counters"]["serve.http_responses"] >= 1
        assert health["metrics"]["counters"]["serve.drains"] == 1
