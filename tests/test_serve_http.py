"""Tests for the ``repro serve`` HTTP API and its shutdown contract."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.net.prefix import prefix_for_asn
from repro.obs.metrics import get_registry
from repro.serve import PredictionServer, QueryEngine, build_artifact


@pytest.fixture(autouse=True)
def clean_registry():
    get_registry().reset()
    yield
    get_registry().reset()


@pytest.fixture
def artifact():
    return build_artifact(
        origins={4: prefix_for_asn(4), 7: prefix_for_asn(7)},
        observers=[1, 2, 3, 4],
        paths={
            (4, 1): {(1, 2, 4), (1, 3, 4)},
            (4, 2): {(2, 4)},
        },
        quarantined=[prefix_for_asn(7)],
        meta={"argv": ["test"]},
    )


@pytest.fixture
def server(artifact):
    """A PredictionServer accepting on an ephemeral port, drained at exit."""
    engine = QueryEngine(artifact, cache_size=16)
    instance = PredictionServer(engine, host="127.0.0.1", port=0)
    loop = threading.Thread(target=instance.serve_forever, daemon=True)
    loop.start()
    yield instance
    instance.drain()
    loop.join(timeout=10)


def get(server, path):
    """GET a path; returns (status, parsed JSON body) without raising."""
    url = f"http://{server.address}{path}"
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error)


class TestEndpoints:
    def test_paths_ok(self, server):
        status, body = get(server, "/paths?origin=4&observer=1")
        assert status == 200
        assert body["reachable"] is True
        assert body["paths"] == [[1, 2, 4], [1, 3, 4]]

    def test_diversity_ok(self, server):
        status, body = get(server, "/diversity?origin=4&observer=1")
        assert status == 200
        assert body["path_count"] == 2
        assert body["multipath"] is True

    def test_lookup_ok(self, server):
        target = str(prefix_for_asn(4)).split("/")[0]
        status, body = get(server, f"/lookup?target={target}&observer=2")
        assert status == 200
        assert body["origin"] == 4
        assert body["paths"] == [[2, 4]]

    def test_unknown_origin_404(self, server):
        status, body = get(server, "/paths?origin=999&observer=1")
        assert status == 404
        assert body["error"]["kind"] == "unknown-origin"
        assert "999" in body["error"]["message"]

    def test_unknown_observer_404(self, server):
        status, body = get(server, "/paths?origin=4&observer=999")
        assert status == 404
        assert body["error"]["kind"] == "unknown-observer"

    def test_non_numeric_asn_400(self, server):
        status, body = get(server, "/paths?origin=abc&observer=1")
        assert status == 400
        assert body["error"]["kind"] == "bad-target"

    def test_missing_parameter_400(self, server):
        status, body = get(server, "/paths?origin=4")
        assert status == 400
        assert "observer" in body["error"]["message"]

    def test_quarantined_origin_503(self, server):
        status, body = get(server, "/paths?origin=7&observer=1")
        assert status == 503
        assert body["error"]["kind"] == "quarantined"

    def test_unknown_route_404(self, server):
        status, body = get(server, "/frobnicate")
        assert status == 404
        assert body["error"]["kind"] == "unknown-route"

    def test_healthz(self, server):
        status, body = get(server, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["artifact"]["origins"] == 2
        assert body["artifact"]["quarantined"] == 1
        assert "cache" in body

    def test_metrics_snapshot(self, server):
        assert get(server, "/paths?origin=4&observer=1")[0] == 200
        status, body = get(server, "/metrics")
        assert status == 200
        assert body["counters"]["serve.queries"] >= 1
        assert body["counters"]["serve.http_responses"] >= 1


class TestPrometheusExposition:
    def _get_text(self, server, path, accept=None):
        request = urllib.request.Request(f"http://{server.address}{path}")
        if accept:
            request.add_header("Accept", accept)
        with urllib.request.urlopen(request, timeout=10) as response:
            return (
                response.status,
                response.headers.get("Content-Type"),
                response.read().decode("utf-8"),
            )

    def test_format_parameter_serves_prometheus_text(self, server):
        assert get(server, "/paths?origin=4&observer=1")[0] == 200
        status, content_type, text = self._get_text(
            server, "/metrics?format=prometheus"
        )
        assert status == 200
        assert content_type.startswith("text/plain")
        assert "# TYPE repro_serve_queries_total counter" in text
        assert "repro_serve_queries_total" in text
        assert "# TYPE repro_serve_request_seconds summary" in text
        assert 'quantile="0.99"' in text

    def test_accept_header_negotiates_prometheus(self, server):
        status, content_type, text = self._get_text(
            server, "/metrics", accept="text/plain"
        )
        assert status == 200
        assert content_type.startswith("text/plain")
        assert "# TYPE" in text

    def test_default_stays_json(self, server):
        status, body = get(server, "/metrics")
        assert status == 200
        assert "counters" in body  # JSON snapshot, not text

    def test_explicit_json_format(self, server):
        status, body = get(server, "/metrics?format=json")
        assert status == 200
        assert "counters" in body

    def test_unknown_format_400(self, server):
        status, body = get(server, "/metrics?format=xml")
        assert status == 400
        assert "xml" in body["error"]["message"]


class TestConcurrency:
    def test_concurrent_queries_share_the_lru(self, server):
        results = []
        errors = []

        def hammer():
            try:
                for _ in range(10):
                    results.append(get(server, "/paths?origin=4&observer=1"))
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=hammer) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(results) == 60
        assert all(status == 200 for status, _ in results)
        stats = server.engine.cache_stats()
        assert stats["queries"] == 60
        assert stats["misses"] == 1  # one cold compute, 59 LRU hits
        assert stats["hits"] == 59


class TestServeCommand:
    """End-to-end: ``repro serve`` drains cleanly on SIGTERM (exit 0)."""

    @pytest.fixture(scope="class")
    def artifact_file(self, tmp_path_factory):
        from repro.cli import main

        base = tmp_path_factory.mktemp("serve")
        dump = base / "snap.dump"
        model = base / "model.cbgp"
        artifact = base / "pred.artifact"
        assert main(
            ["synthesize", "--seed", "5", "--scale", "0.15",
             "--points", "8", "--out", str(dump)]
        ) == 0
        assert main(["refine", str(dump), "--out", str(model)]) == 0
        assert main(
            ["compile-artifact", str(model), "--out", str(artifact)]
        ) == 0
        return artifact

    def test_sigterm_drains_to_exit_0(self, artifact_file, tmp_path):
        import os
        import signal
        import subprocess
        import sys

        report = tmp_path / "serve_health.json"
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", str(artifact_file),
             "--port", "0", "--stats-report", str(report)],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
        )
        try:
            banner = process.stdout.readline().strip()
            assert banner.startswith("serving predictions on http://")
            address = banner.rsplit("http://", 1)[1]
            with urllib.request.urlopen(
                f"http://{address}/healthz", timeout=10
            ) as response:
                assert json.load(response)["status"] == "ok"
            process.send_signal(signal.SIGTERM)
            code = process.wait(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
        assert code == 0
        health = json.loads(report.read_text())
        assert health["metrics"]["counters"]["serve.http_responses"] >= 1
        assert health["metrics"]["counters"]["serve.drains"] == 1
