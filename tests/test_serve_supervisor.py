"""Tests for supervised multi-worker serving: the shared
SupervisionLedger and a real ``repro serve --workers 2`` process tree."""

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request
from pathlib import Path

import pytest

import repro
from repro.net.prefix import prefix_for_asn
from repro.obs.metrics import get_registry
from repro.parallel.supervisor import SupervisionLedger
from repro.serve import build_artifact


@pytest.fixture(autouse=True)
def clean_registry():
    get_registry().reset()
    yield
    get_registry().reset()


class TestSupervisionLedger:
    def test_first_spawn_is_not_a_restart(self):
        ledger = SupervisionLedger("serve", workers=2)
        generation, restart = ledger.record_spawn(0, pid=100)
        assert (generation, restart) == (1, False)
        generation, restart = ledger.record_spawn(1, pid=101)
        assert (generation, restart) == (2, False)  # global spawn count
        assert ledger.restarts == 0

    def test_respawn_counts_as_a_restart(self):
        ledger = SupervisionLedger("serve", workers=1)
        ledger.record_spawn(0, pid=100)
        ledger.record_death(0, pid=100, generation=1, reason="killed")
        generation, restart = ledger.record_spawn(0, pid=200)
        assert (generation, restart) == (2, True)
        assert ledger.restarts == 1
        registry = get_registry()
        assert registry.counter("serve.workers_spawned").value == 2
        assert registry.counter("serve.worker_restarts").value == 1
        assert registry.counter("serve.worker_deaths").value == 1

    def test_summary_shape_matches_the_merge_contract(self):
        ledger = SupervisionLedger("parallel", workers=3)
        ledger.record_spawn(0, pid=1)
        summary = ledger.summary()
        assert summary == {
            "workers": 3,
            "spawned": 1,
            "deaths": 0,
            "restarts": 0,
        }

    def test_prefixes_keep_serve_and_parallel_metrics_apart(self):
        SupervisionLedger("serve", workers=1).record_spawn(0, pid=1)
        SupervisionLedger("parallel", workers=1).record_spawn(0, pid=2)
        registry = get_registry()
        assert registry.counter("serve.workers_spawned").value == 1
        assert registry.counter("parallel.workers_spawned").value == 1


# ----------------------------------------------------------------------
# The real process tree (kept brief: the chaos campaign covers depth)
# ----------------------------------------------------------------------


def _get(address, path, timeout=5.0):
    with urllib.request.urlopen(
        f"http://{address}{path}", timeout=timeout
    ) as response:
        return response.status, json.load(response)


def _read_banner(process, timeout=30.0):
    lines = []
    reader = threading.Thread(
        target=lambda: lines.append(process.stdout.readline()), daemon=True
    )
    reader.start()
    reader.join(timeout)
    assert lines and "http://" in (lines[0] or ""), (
        f"no banner within {timeout}s: {lines!r}"
    )
    return lines[0].strip().rsplit("http://", 1)[1]


def _worker_pids(address, workers, deadline=30.0):
    """Poll /healthz until `workers` distinct worker pids have answered."""
    pids = set()
    limit = time.monotonic() + deadline
    while len(pids) < workers and time.monotonic() < limit:
        try:
            _, body = _get(address, "/healthz", timeout=2.0)
            pids.add(body["pid"])
        except OSError:
            pass
        time.sleep(0.02)
    assert len(pids) >= workers, f"saw only pids {pids}"
    return pids


@pytest.mark.slow
class TestServeWorkers:
    def test_worker_killed_with_sigkill_is_replaced(self, tmp_path):
        artifact = tmp_path / "pool.artifact"
        build_artifact(
            origins={10: prefix_for_asn(10)},
            observers=[1],
            paths={(10, 1): {(1, 10)}},
        ).save(artifact)
        env = dict(os.environ)
        src = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", str(artifact),
             "--port", "0", "--workers", "2"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            text=True,
        )
        try:
            address = _read_banner(process)
            pids = _worker_pids(address, workers=2)
            victim = min(pids)
            os.kill(victim, signal.SIGKILL)
            # The victim's replacement shows up as a pid we never saw.
            limit = time.monotonic() + 15.0
            replacement = None
            while replacement is None and time.monotonic() < limit:
                try:
                    _, body = _get(address, "/healthz", timeout=2.0)
                    if body["pid"] not in pids:
                        replacement = body["pid"]
                except OSError:
                    pass
                time.sleep(0.02)
            assert replacement is not None, "killed worker never replaced"
            # The survivor kept answering queries throughout.
            status, body = _get(address, "/paths?origin=10&observer=1")
            assert status == 200 and body["reachable"] is True
            # SIGTERM drains the whole tree cleanly.
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)

    def test_single_worker_requires_no_supervisor(self, tmp_path):
        """--workers 1 keeps the historical in-process path."""
        artifact = tmp_path / "solo.artifact"
        build_artifact(
            origins={10: prefix_for_asn(10)},
            observers=[1],
            paths={(10, 1): {(1, 10)}},
        ).save(artifact)
        env = dict(os.environ)
        src = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", str(artifact),
             "--port", "0", "--workers", "1"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            text=True,
        )
        try:
            address = _read_banner(process)
            status, body = _get(address, "/healthz")
            assert status == 200 and body["status"] == "ok"
            assert body["pid"] == process.pid  # no forked workers
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)
