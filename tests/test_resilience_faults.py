"""Tests for the fault-injection harness."""

import io
import random

import pytest

from repro.bgp.engine import simulate, simulate_prefix
from repro.bgp.network import Network
from repro.data.dumps import read_table_dump, write_table_dump
from repro.errors import ConvergenceError, TopologyError
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.resilience.faults import (
    FaultConfig,
    FaultReport,
    apply_faults,
    corrupt_dump_lines,
    find_wheel_candidates,
    inject_dispute_wheel,
)
from repro.topology.dataset import ObservedRoute, PathDataset


def gadget_network(extra_spokes: int = 0):
    """Hub originating a prefix, three wheel spokes, optional bystanders."""
    net = Network("gadget")
    spokes = {asn: net.add_router(asn) for asn in (1, 2, 3)}
    hub = net.add_router(4)
    prefix = Prefix("10.0.0.0/24")
    net.originate(hub, prefix)
    for router in spokes.values():
        net.connect(router, hub)
    for a, b in ((1, 2), (2, 3), (3, 1)):
        net.connect(spokes[a], spokes[b])
    for index in range(extra_spokes):
        bystander = net.add_router(100 + index)
        net.connect(bystander, hub)
    return net, prefix


class TestDisputeWheel:
    def test_injected_wheel_diverges(self):
        net, prefix = gadget_network()
        inject_dispute_wheel(net, prefix, (1, 2, 3))
        with pytest.raises(ConvergenceError) as excinfo:
            simulate_prefix(net, prefix, max_messages=5000)
        assert excinfo.value.prefix == prefix
        assert excinfo.value.budget == 5000
        assert excinfo.value.messages_used > 5000

    def test_without_injection_converges(self):
        net, prefix = gadget_network()
        stats = simulate_prefix(net, prefix)
        assert stats.diverged == []

    def test_quarantine_mode_returns_partial_stats(self):
        net, prefix = gadget_network()
        inject_dispute_wheel(net, prefix, (1, 2, 3))
        stats = simulate(net, max_messages=5000, on_divergence="quarantine")
        assert stats.diverged == [prefix]
        assert stats.prefixes == 1
        # quarantine clears the partial routing state
        for router in net.routers.values():
            assert router.best(prefix) is None

    def test_rejects_too_small_wheel(self):
        net, prefix = gadget_network()
        with pytest.raises(TopologyError):
            inject_dispute_wheel(net, prefix, (1, 2))

    def test_rejects_unconnected_wheel(self):
        net, prefix = gadget_network()
        with pytest.raises(TopologyError):
            inject_dispute_wheel(net, prefix, (1, 2, 4 + 99))

    def test_find_wheel_candidates(self):
        net, _ = gadget_network()
        triangles = find_wheel_candidates(net)
        assert (1, 2, 3) in triangles

    def test_apply_faults_deterministic(self):
        reports = []
        for _ in range(2):
            net, _ = gadget_network(extra_spokes=2)
            reports.append(
                apply_faults(net, FaultConfig(seed=9, dispute_wheels=1, session_flaps=1))
            )
        assert reports[0].wheels == reports[1].wheels
        assert reports[0].flapped == reports[1].flapped


class TestDumpCorruption:
    def make_lines(self, count: int = 40):
        ds = PathDataset()
        for index in range(count):
            ds.add(
                ObservedRoute(
                    f"p{index}", 1, Prefix("10.0.0.0/24"), ASPath((1, 2 + index))
                )
            )
        buffer = io.StringIO()
        write_table_dump(ds, buffer)
        return buffer.getvalue().splitlines()

    def test_corruption_counted_and_deterministic(self):
        lines = self.make_lines()
        config = FaultConfig(seed=3, corrupt_line_fraction=0.3, truncate_line_fraction=0.2)
        report_a, report_b = FaultReport(), FaultReport()
        out_a = corrupt_dump_lines(lines, config, report_a)
        out_b = corrupt_dump_lines(lines, config, report_b)
        assert out_a == out_b
        assert report_a.corrupted_lines == report_b.corrupted_lines > 0
        assert report_a.truncated_lines == report_b.truncated_lines > 0

    def test_corrupted_lines_skipped_by_lenient_parser(self):
        lines = self.make_lines()
        config = FaultConfig(seed=3, corrupt_line_fraction=0.2, truncate_line_fraction=0.1)
        report = FaultReport()
        corrupted = corrupt_dump_lines(lines, config, report)
        result = read_table_dump(corrupted)
        damaged = report.corrupted_lines + report.truncated_lines
        assert result.skipped_malformed == damaged
        assert len(result.dataset) == len(lines) - damaged

    def test_zero_fractions_change_nothing(self):
        lines = self.make_lines()
        report = FaultReport()
        assert corrupt_dump_lines(lines, FaultConfig(seed=1), report) == lines
        assert report.corrupted_lines == report.truncated_lines == 0


class TestSessionFlaps:
    def test_flaps_remove_peerings(self):
        net, prefix = gadget_network(extra_spokes=3)
        before = net.stats()["ebgp_sessions"]
        report = apply_faults(net, FaultConfig(seed=5, session_flaps=2))
        assert len(report.flapped) == 2
        assert net.stats()["ebgp_sessions"] == before - 4  # 2 peerings x 2 directions
        # the network still simulates after the flap
        simulate(net, on_divergence="quarantine")

    def test_report_serialises(self):
        net, _ = gadget_network()
        report = apply_faults(
            net, FaultConfig(seed=5, dispute_wheels=1, session_flaps=1)
        )
        document = report.to_dict()
        assert set(document) == {
            "dispute_wheels",
            "flapped_sessions",
            "corrupted_lines",
            "truncated_lines",
            "message_budget",
            "worker_crash_prefixes",
            "worker_hang_prefixes",
        }
