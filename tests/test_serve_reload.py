"""Tests for hot-swap artifact reloads (EngineRef / ReloadCoordinator /
ArtifactWatcher) and the availability contract around them."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.errors import ArtifactError
from repro.net.prefix import prefix_for_asn
from repro.obs.metrics import get_registry
from repro.resilience.faults import corrupt_artifact_payload
from repro.serve import (
    ArtifactWatcher,
    EngineRef,
    PredictionArtifact,
    PredictionServer,
    QueryEngine,
    ReloadCoordinator,
    build_artifact,
)


@pytest.fixture(autouse=True)
def clean_registry():
    get_registry().reset()
    yield
    get_registry().reset()


def make_artifact(version=1):
    """A small artifact; higher versions carry more paths (new checksum)."""
    paths = {(10, 1): {(1, 2, 10)}, (10, 2): {(2, 10)}}
    for extra in range(2, version + 1):
        paths[(10, 1)] = set(paths[(10, 1)]) | {(1, 3 + extra, 10)}
    return build_artifact(
        origins={10: prefix_for_asn(10)},
        observers=[1, 2],
        paths=paths,
        meta={"version": version},
    )


@pytest.fixture
def artifact_file(tmp_path):
    path = tmp_path / "reload.artifact"
    make_artifact(1).save(path)
    return path


class TestArtifactChecksum:
    def test_save_and_load_set_the_checksum(self, tmp_path):
        artifact = make_artifact()
        assert artifact.checksum == ""  # never touched disk
        artifact.save(tmp_path / "a.artifact")
        assert artifact.checksum != ""
        loaded = PredictionArtifact.load(tmp_path / "a.artifact")
        assert loaded.checksum == artifact.checksum

    def test_distinct_contents_distinct_checksums(self, tmp_path):
        one, two = make_artifact(1), make_artifact(2)
        one.save(tmp_path / "1.artifact")
        two.save(tmp_path / "2.artifact")
        assert one.checksum != two.checksum

    def test_checksum_reaches_engine_describe(self, tmp_path):
        artifact = make_artifact()
        artifact.save(tmp_path / "a.artifact")
        loaded = PredictionArtifact.load(tmp_path / "a.artifact")
        described = QueryEngine(loaded).describe()
        assert described["checksum"] == artifact.checksum

    def test_corrupt_artifact_payload_breaks_the_checksum(self, tmp_path):
        path = tmp_path / "a.artifact"
        make_artifact().save(path)
        flips = corrupt_artifact_payload(path, seed=7)
        assert flips >= 1
        with pytest.raises(ArtifactError, match="checksum"):
            PredictionArtifact.load(path)


class TestEngineRef:
    def test_swap_returns_the_old_engine(self):
        old = QueryEngine(make_artifact(1))
        new = QueryEngine(make_artifact(2))
        ref = EngineRef(old)
        assert ref.get() is old
        assert ref.swap(new) is old
        assert ref.get() is new

    def test_old_engine_keeps_answering_after_a_swap(self):
        old = QueryEngine(make_artifact(1))
        ref = EngineRef(old)
        grabbed = ref.get()  # an in-flight request's view
        ref.swap(QueryEngine(make_artifact(2)))
        assert grabbed.paths(10, 1).to_dict()["reachable"] is True


class TestReloadCoordinator:
    def coordinator(self, artifact_file, cache_size=8):
        engine = QueryEngine(PredictionArtifact.load(artifact_file))
        ref = EngineRef(engine)
        return ref, ReloadCoordinator(ref, artifact_file, cache_size)

    def test_reload_swaps_to_the_new_artifact(self, artifact_file):
        ref, coordinator = self.coordinator(artifact_file)
        before = ref.get()
        make_artifact(2).save(artifact_file)
        result = coordinator.reload()
        assert result["outcome"] == "reloaded"
        assert ref.get() is not before
        assert ref.get().artifact.checksum == result["checksum"]
        assert coordinator.describe()["generation"] == 2
        assert get_registry().counter("serve.reloads").value == 1

    def test_unchanged_file_does_not_swap(self, artifact_file):
        ref, coordinator = self.coordinator(artifact_file)
        before = ref.get()
        result = coordinator.reload()
        assert result["outcome"] == "unchanged"
        assert ref.get() is before
        assert get_registry().counter("serve.reloads").value == 0

    def test_failed_validation_keeps_the_old_engine_degraded(
        self, artifact_file
    ):
        ref, coordinator = self.coordinator(artifact_file)
        before = ref.get()
        corrupt_artifact_payload(artifact_file, seed=3)
        result = coordinator.reload()
        assert result["outcome"] == "failed"
        assert "checksum" in result["error"]
        assert ref.get() is before  # old artifact still serving
        assert coordinator.degraded is True
        state = coordinator.describe()
        assert state["failures"] == 1
        assert state["last_error"]
        assert state["staleness_seconds"] >= 0
        assert get_registry().counter("serve.reload_failures").value == 1

    def test_good_reload_clears_degraded(self, artifact_file):
        _, coordinator = self.coordinator(artifact_file)
        corrupt_artifact_payload(artifact_file, seed=3)
        coordinator.reload()
        assert coordinator.degraded is True
        make_artifact(2).save(artifact_file)
        assert coordinator.reload()["outcome"] == "reloaded"
        assert coordinator.degraded is False
        assert coordinator.describe()["last_error"] == ""

    def test_concurrent_reload_reports_busy(self, artifact_file):
        _, coordinator = self.coordinator(artifact_file)
        with coordinator._reload_lock:
            assert coordinator.reload()["outcome"] == "busy"


class TestArtifactWatcher:
    def test_triggers_once_per_signature(self, artifact_file):
        _, coordinator = TestReloadCoordinator().coordinator(artifact_file)
        watcher = ArtifactWatcher(coordinator, interval=60.0)
        assert watcher.poll_once() is None  # startup signature: no reload
        make_artifact(2).save(artifact_file)
        result = watcher.poll_once()
        assert result["outcome"] == "reloaded"
        assert watcher.poll_once() is None  # same signature: attempted once

    def test_corrupt_write_degrades_exactly_once(self, artifact_file):
        _, coordinator = TestReloadCoordinator().coordinator(artifact_file)
        watcher = ArtifactWatcher(coordinator, interval=60.0)
        corrupt_artifact_payload(artifact_file, seed=1)
        assert watcher.poll_once()["outcome"] == "failed"
        assert watcher.poll_once() is None  # no retry loop on the same file
        assert get_registry().counter("serve.reload_failures").value == 1

    def test_rejects_nonpositive_interval(self, artifact_file):
        _, coordinator = TestReloadCoordinator().coordinator(artifact_file)
        with pytest.raises(ValueError):
            ArtifactWatcher(coordinator, interval=0)


def post(server, path):
    request = urllib.request.Request(
        f"http://{server.address}{path}", data=b"", method="POST"
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error)


def get(server, path):
    try:
        with urllib.request.urlopen(
            f"http://{server.address}{path}", timeout=10
        ) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error)


class TestReloadOverHTTP:
    @pytest.fixture
    def server(self, artifact_file):
        engine = QueryEngine(PredictionArtifact.load(artifact_file))
        instance = PredictionServer(engine, host="127.0.0.1", port=0)
        instance.reloader = ReloadCoordinator(
            instance.engine_ref, artifact_file
        )
        loop = threading.Thread(target=instance.serve_forever, daemon=True)
        loop.start()
        yield instance
        instance.drain()
        loop.join(timeout=10)

    def test_post_reload_swaps_and_healthz_reports_it(
        self, server, artifact_file
    ):
        old_checksum = server.engine.artifact.checksum
        make_artifact(2).save(artifact_file)
        status, body = post(server, "/-/reload")
        assert status == 200
        assert body["outcome"] == "reloaded"
        status, health = get(server, "/healthz")
        assert status == 200
        assert health["artifact"]["checksum"] == body["checksum"]
        assert health["artifact"]["checksum"] != old_checksum
        assert health["reload"]["generation"] == 2

    def test_post_reload_unchanged(self, server):
        status, body = post(server, "/-/reload")
        assert status == 200
        assert body["outcome"] == "unchanged"

    def test_corrupted_reload_keeps_serving_degraded(
        self, server, artifact_file
    ):
        corrupt_artifact_payload(artifact_file, seed=5)
        status, body = post(server, "/-/reload")
        assert status == 500
        assert body["outcome"] == "failed"
        status, health = get(server, "/healthz")
        assert status == 200  # alive: liveness is not readiness
        assert health["status"] == "degraded"
        assert health["reload"]["last_error"]
        # The old artifact still answers.
        assert get(server, "/paths?origin=10&observer=1")[0] == 200
        # Readiness shows degraded but ready.
        status, ready = get(server, "/readyz")
        assert status == 200
        assert ready == {"ready": True, "status": "degraded"}

    def test_get_reload_is_405(self, server):
        status, body = get(server, "/-/reload")
        assert status == 405
        assert body["error"]["kind"] == "method-not-allowed"

    def test_post_elsewhere_is_404(self, server):
        assert post(server, "/paths")[0] == 404

    def test_reload_without_coordinator_is_503(self, artifact_file):
        engine = QueryEngine(PredictionArtifact.load(artifact_file))
        instance = PredictionServer(engine, host="127.0.0.1", port=0)
        loop = threading.Thread(target=instance.serve_forever, daemon=True)
        loop.start()
        try:
            status, body = post(instance, "/-/reload")
            assert status == 503
            assert body["error"]["kind"] == "reload-unavailable"
        finally:
            instance.drain()
            loop.join(timeout=10)


class TestHotSwapEndToEnd:
    """The acceptance demo: a live server answers sustained queries while
    artifact v2 lands and a reload is triggered — zero failed requests,
    and /healthz reports the new checksum."""

    def test_zero_dropped_requests_across_a_reload(self, artifact_file):
        engine = QueryEngine(PredictionArtifact.load(artifact_file))
        server = PredictionServer(engine, host="127.0.0.1", port=0)
        server.reloader = ReloadCoordinator(server.engine_ref, artifact_file)
        loop = threading.Thread(target=server.serve_forever, daemon=True)
        loop.start()
        outcomes = []
        stop = threading.Event()

        def sustained_load():
            while not stop.is_set():
                outcomes.append(get(server, "/paths?origin=10&observer=1")[0])

        clients = [threading.Thread(target=sustained_load) for _ in range(3)]
        try:
            for client in clients:
                client.start()
            while len(outcomes) < 20:  # the load is demonstrably flowing
                time.sleep(0.01)
            v2 = make_artifact(2)
            v2.save(artifact_file)
            status, body = post(server, "/-/reload")
            assert (status, body["outcome"]) == (200, "reloaded")
            baseline = len(outcomes)
            while len(outcomes) < baseline + 20:  # and keeps flowing after
                time.sleep(0.01)
        finally:
            stop.set()
            for client in clients:
                client.join(timeout=10)
            server.drain()
            loop.join(timeout=10)
        assert outcomes and all(status == 200 for status in outcomes), (
            f"{sum(1 for s in outcomes if s != 200)} of {len(outcomes)} "
            "requests failed across the hot swap"
        )
        # The swap happened: the server's engine now serves v2.
        assert server.engine.artifact.checksum == v2.checksum
