"""Unit tests for relationship types, inference, and policy realization."""

from repro.bgp import Network, simulate
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.relationships.gao import (
    enforce_acyclic_hierarchy,
    infer_gao_relationships,
)
from repro.relationships.policies import (
    apply_relationship_policies,
    clear_relationship_policies,
)
from repro.relationships.types import Relationship, RelationshipMap
from repro.relationships.valleyfree import (
    infer_valley_free_relationships,
    is_valley_free,
)
from repro.topology.dataset import ObservedRoute, PathDataset

P = Prefix("10.0.0.0/24")


def dataset_from_paths(*paths):
    ds = PathDataset()
    for path in paths:
        ds.add(ObservedRoute(f"p{path[0]}-{hash(path) & 0xffff}", path[0], P, ASPath(path)))
    return ds


class TestRelationshipMap:
    def test_set_and_get_symmetry(self):
        rels = RelationshipMap()
        rels.set(1, 2, Relationship.CUSTOMER)  # 2 is 1's customer
        assert rels.get(1, 2) is Relationship.CUSTOMER
        assert rels.get(2, 1) is Relationship.PROVIDER

    def test_canonical_storage_with_reversed_insert(self):
        rels = RelationshipMap()
        rels.set(5, 3, Relationship.PROVIDER)  # 3 is 5's provider
        assert rels.get(3, 5) is Relationship.CUSTOMER

    def test_unset_edge_is_unknown(self):
        assert RelationshipMap().get(1, 2) is Relationship.UNKNOWN

    def test_peer_and_sibling_symmetric(self):
        rels = RelationshipMap()
        rels.set(1, 2, Relationship.PEER)
        rels.set(3, 4, Relationship.SIBLING)
        assert rels.get(2, 1) is Relationship.PEER
        assert rels.get(4, 3) is Relationship.SIBLING

    def test_counts_merge_directions(self):
        rels = RelationshipMap()
        rels.set(1, 2, Relationship.CUSTOMER)
        rels.set(3, 1, Relationship.PROVIDER)
        rels.set(1, 4, Relationship.PEER)
        counts = rels.counts()
        assert counts[Relationship.CUSTOMER] == 2
        assert counts[Relationship.PEER] == 1

    def test_update_unset(self):
        base = RelationshipMap()
        base.set(1, 2, Relationship.PEER)
        other = RelationshipMap()
        other.set(1, 2, Relationship.CUSTOMER)
        other.set(2, 3, Relationship.CUSTOMER)
        assert base.update_unset(other) == 1
        assert base.get(1, 2) is Relationship.PEER  # not overwritten


class TestValleyFreeValidation:
    def make_rels(self):
        rels = RelationshipMap()
        rels.set(1, 2, Relationship.PROVIDER)  # 2 is 1's provider
        rels.set(2, 3, Relationship.PEER)
        rels.set(3, 4, Relationship.CUSTOMER)  # 4 is 3's customer
        return rels

    def test_canonical_up_peer_down_is_valid(self):
        assert is_valley_free((1, 2, 3, 4), self.make_rels())

    def test_peer_after_descending_is_invalid(self):
        rels = RelationshipMap()
        rels.set(1, 2, Relationship.CUSTOMER)
        rels.set(2, 3, Relationship.PEER)
        assert not is_valley_free((1, 2, 3), rels)

    def test_two_peerings_invalid(self):
        rels = RelationshipMap()
        rels.set(1, 2, Relationship.PEER)
        rels.set(2, 3, Relationship.PEER)
        assert not is_valley_free((1, 2, 3), rels)

    def test_climb_after_peak_is_invalid(self):
        rels = RelationshipMap()
        rels.set(1, 2, Relationship.CUSTOMER)  # descending
        rels.set(2, 3, Relationship.PROVIDER)  # climbing again -> valley
        assert not is_valley_free((1, 2, 3), rels)

    def test_unknown_edges_are_wildcards(self):
        assert is_valley_free((1, 2, 3), RelationshipMap())


class TestValleyFreeInference:
    def test_infers_customers_below_tier1(self):
        # Observer 1 (tier-1) sees origin 4 via tier-1 2 then 3: 2->3->4 descend.
        ds = dataset_from_paths((1, 2, 3, 4), (2, 3, 4))
        rels = infer_valley_free_relationships(ds, level1=[1, 2])
        assert rels.get(2, 3) is Relationship.CUSTOMER
        assert rels.get(3, 4) is Relationship.CUSTOMER

    def test_infers_providers_on_observer_side(self):
        # Observer 5 reaches tier-1 1 via 3: the 5-3 and 3-1 edges climb.
        ds = dataset_from_paths((5, 3, 1, 2, 4))
        rels = infer_valley_free_relationships(ds, level1=[1, 2])
        assert rels.get(5, 3) is Relationship.PROVIDER
        assert rels.get(3, 1) is Relationship.PROVIDER

    def test_seeds_are_peers(self):
        ds = dataset_from_paths((1, 2, 3))
        rels = infer_valley_free_relationships(ds, level1=[1, 2])
        assert rels.get(1, 2) is Relationship.PEER

    def test_conflict_becomes_sibling(self):
        # 2-3 inferred as customer from one path and provider from another.
        ds = dataset_from_paths((1, 2, 3, 9), (1, 3, 2, 9))
        rels = infer_valley_free_relationships(ds, level1=[1])
        assert rels.get(2, 3) in (Relationship.SIBLING, Relationship.UNKNOWN)


class TestGaoInference:
    def test_top_provider_voting(self):
        # AS 2 has the highest degree; 1 and 3 hang off it, 4 below 3.
        ds = dataset_from_paths((1, 2, 3, 4), (1, 2, 5), (1, 2, 6))
        rels = infer_gao_relationships(ds)
        assert rels.get(1, 2) is Relationship.PROVIDER  # 2 provides for 1
        assert rels.get(2, 3) is Relationship.CUSTOMER
        assert rels.get(3, 4) is Relationship.CUSTOMER

    def test_sibling_on_conflicting_votes(self):
        ds = dataset_from_paths((1, 2, 3, 4), (4, 3, 2, 1))
        rels = infer_gao_relationships(ds)
        # votes in both directions for every edge
        assert rels.get(2, 3) is Relationship.SIBLING

    def test_enforce_acyclic_hierarchy_breaks_cycle(self):
        rels = RelationshipMap()
        rels.set(1, 2, Relationship.PROVIDER)  # 1 -> 2 up
        rels.set(2, 3, Relationship.PROVIDER)  # 2 -> 3 up
        rels.set(3, 1, Relationship.PROVIDER)  # 3 -> 1 up: cycle!
        demoted = enforce_acyclic_hierarchy(rels)
        assert demoted >= 1
        counts = rels.counts()
        assert counts[Relationship.PEER] >= 1

    def test_enforce_acyclic_noop_on_dag(self):
        rels = RelationshipMap()
        rels.set(1, 2, Relationship.PROVIDER)
        rels.set(2, 3, Relationship.PROVIDER)
        assert enforce_acyclic_hierarchy(rels) == 0


class TestPolicyRealization:
    def build_network(self):
        """1 = provider of 2 and 3; 2 and 3 peer; origin prefix at 2."""
        net = Network()
        r1, r2, r3 = net.add_router(1), net.add_router(2), net.add_router(3)
        net.connect(r1, r2)
        net.connect(r1, r3)
        net.connect(r2, r3)
        net.originate(r2, P)
        rels = RelationshipMap()
        rels.set(1, 2, Relationship.CUSTOMER)
        rels.set(1, 3, Relationship.CUSTOMER)
        rels.set(2, 3, Relationship.PEER)
        return net, (r1, r2, r3), rels

    def test_customer_routes_exported_everywhere(self):
        net, (r1, r2, r3), rels = self.build_network()
        apply_relationship_policies(net, rels)
        simulate(net)
        assert r1.best(P) is not None
        assert r3.best(P) is not None

    def test_peer_routes_not_reexported_to_provider(self):
        """AS3 learns 2's prefix over the peering; it must not send it up to AS1."""
        net, (r1, r2, r3), rels = self.build_network()
        # remove the 1-2 link so AS1 could only learn via AS3
        net.disconnect(r1, r2)
        rels = RelationshipMap()
        rels.set(1, 3, Relationship.CUSTOMER)
        rels.set(2, 3, Relationship.PEER)
        apply_relationship_policies(net, rels)
        simulate(net)
        assert r3.best(P) is not None
        assert r1.best(P) is None  # valley blocked

    def test_provider_routes_not_reexported_to_peer(self):
        """AS2 hears AS3's... routes from provider must not cross a peering."""
        net = Network()
        r1, r2, r3 = net.add_router(1), net.add_router(2), net.add_router(3)
        net.connect(r1, r2)  # 1 provider of 2
        net.connect(r2, r3)  # 2 peers with 3
        net.originate(r1, P)
        rels = RelationshipMap()
        rels.set(2, 1, Relationship.PROVIDER)
        rels.set(2, 3, Relationship.PEER)
        apply_relationship_policies(net, rels)
        simulate(net)
        assert r2.best(P) is not None
        assert r3.best(P) is None

    def test_customer_preferred_over_peer(self):
        """With routes from both a customer and a peer, pick the customer."""
        net = Network()
        observer = net.add_router(1)
        customer = net.add_router(2)
        peer = net.add_router(3)
        origin = net.add_router(4)
        net.connect(observer, customer)
        net.connect(observer, peer)
        net.connect(customer, origin)
        net.connect(peer, origin)
        net.originate(origin, P)
        rels = RelationshipMap()
        rels.set(1, 2, Relationship.CUSTOMER)
        rels.set(1, 3, Relationship.PEER)
        rels.set(2, 4, Relationship.CUSTOMER)
        rels.set(3, 4, Relationship.CUSTOMER)
        apply_relationship_policies(net, rels)
        simulate(net)
        assert observer.best(P).as_path == (2, 4)

    def test_clear_relationship_policies(self):
        net, _, rels = self.build_network()
        configured = apply_relationship_policies(net, rels)
        assert configured == 6  # three peerings, two directions each
        removed = clear_relationship_policies(net)
        assert removed > 0
        for session in net.ebgp_sessions():
            if session.import_map is not None:
                assert all(c.tag != "relationship" for c in session.import_map.clauses())

    def test_reapply_is_idempotent(self):
        net, _, rels = self.build_network()
        apply_relationship_policies(net, rels)
        apply_relationship_policies(net, rels)
        for session in net.ebgp_sessions():
            tagged = [
                c for c in session.import_map.clauses() if c.tag == "relationship"
            ]
            assert len(tagged) == 1
