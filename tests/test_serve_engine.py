"""Tests for the cached query engine over a hand-built artifact."""

import threading

import pytest

from repro.net.prefix import prefix_for_asn
from repro.obs.metrics import get_registry
from repro.serve import QueryEngine, QueryError, build_artifact
from repro.serve.engine import (
    BAD_TARGET,
    QUARANTINED,
    UNKNOWN_OBSERVER,
    UNKNOWN_ORIGIN,
    UNKNOWN_TARGET,
)


@pytest.fixture(autouse=True)
def clean_registry():
    get_registry().reset()
    yield
    get_registry().reset()


@pytest.fixture
def artifact():
    # Diamond 1-{2,3}-4 plus quarantined origin 7.  Observer 5 has no
    # path to AS 4 (known pair, empty answer = unreachable).
    return build_artifact(
        origins={
            1: prefix_for_asn(1),
            4: prefix_for_asn(4),
            7: prefix_for_asn(7),
        },
        observers=[1, 2, 3, 4, 5],
        paths={
            (4, 1): {(1, 2, 4), (1, 3, 4)},
            (4, 2): {(2, 4)},
            (4, 3): {(3, 4)},
            (4, 4): {(4,)},
            (1, 2): {(2, 1)},
        },
        quarantined=[prefix_for_asn(7)],
        meta={"argv": ["test"]},
    )


@pytest.fixture
def engine(artifact):
    return QueryEngine(artifact, cache_size=8)


class TestPaths:
    def test_multipath_pair(self, engine):
        answer = engine.paths(4, 1)
        assert answer.reachable
        assert answer.paths == ((1, 2, 4), (1, 3, 4))
        assert answer.prefix == str(prefix_for_asn(4))

    def test_known_pair_without_routes_is_unreachable(self, engine):
        answer = engine.paths(4, 5)
        assert not answer.reachable
        assert answer.paths == ()

    def test_unknown_origin(self, engine):
        with pytest.raises(QueryError) as excinfo:
            engine.paths(999, 1)
        assert excinfo.value.kind == UNKNOWN_ORIGIN
        assert "999" in str(excinfo.value)

    def test_unknown_observer(self, engine):
        with pytest.raises(QueryError) as excinfo:
            engine.paths(4, 999)
        assert excinfo.value.kind == UNKNOWN_OBSERVER

    def test_quarantined_origin_refuses(self, engine):
        with pytest.raises(QueryError) as excinfo:
            engine.paths(7, 1)
        assert excinfo.value.kind == QUARANTINED

    def test_batch_preserves_order(self, engine):
        answers = engine.paths_batch([(4, 2), (4, 1)])
        assert [a.observer for a in answers] == [2, 1]


class TestDiversity:
    def test_multipath_summary(self, engine):
        answer = engine.diversity(4, 1)
        assert answer.multipath
        assert answer.path_count == 2
        assert answer.next_hops == (2, 3)
        assert answer.min_length == answer.max_length == 2

    def test_single_path_not_multipath(self, engine):
        answer = engine.diversity(4, 2)
        assert not answer.multipath
        assert answer.next_hops == (4,)

    def test_self_origin_has_no_next_hop(self, engine):
        answer = engine.diversity(4, 4)
        assert answer.path_count == 1
        assert answer.next_hops == ()
        assert answer.min_length == 0


class TestLookup:
    def test_address_inside_canonical_prefix(self, engine):
        target = str(prefix_for_asn(4)).split("/")[0]
        answer = engine.lookup(target, 1)
        assert answer.origin == 4
        assert answer.matched_prefix == str(prefix_for_asn(4))
        assert answer.paths == ((1, 2, 4), (1, 3, 4))

    def test_cidr_target(self, engine):
        answer = engine.lookup(str(prefix_for_asn(1)), 2)
        assert answer.origin == 1
        assert answer.paths == ((2, 1),)

    def test_unreachable_origin_answers_empty(self, engine):
        # Observer 5 has no route to AS 4, but the prefix is known:
        # lookup answers (reachable=False) instead of erroring.
        answer = engine.lookup(str(prefix_for_asn(4)), 5)
        assert answer.origin == 4
        assert not answer.reachable

    def test_uncovered_target_is_unknown(self, engine):
        with pytest.raises(QueryError) as excinfo:
            engine.lookup("200.0.0.1", 1)
        assert excinfo.value.kind == UNKNOWN_TARGET

    def test_quarantined_prefix_refuses(self, engine):
        with pytest.raises(QueryError) as excinfo:
            engine.lookup(str(prefix_for_asn(7)), 1)
        assert excinfo.value.kind == QUARANTINED

    def test_garbage_target_is_bad(self, engine):
        with pytest.raises(QueryError) as excinfo:
            engine.lookup("not-an-ip", 1)
        assert excinfo.value.kind == BAD_TARGET

    def test_unknown_observer_checked_first(self, engine):
        with pytest.raises(QueryError) as excinfo:
            engine.lookup(str(prefix_for_asn(4)), 999)
        assert excinfo.value.kind == UNKNOWN_OBSERVER

    def test_batch(self, engine):
        answers = engine.lookup_batch(
            [str(prefix_for_asn(4)), str(prefix_for_asn(1))], 2
        )
        assert [a.origin for a in answers] == [4, 1]


class TestCache:
    def test_hits_and_misses_counted(self, engine):
        engine.paths(4, 1)
        engine.paths(4, 1)
        engine.paths(4, 2)
        stats = engine.cache_stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 2
        assert stats["queries"] == 3

    def test_eviction_keeps_capacity_bound(self, artifact):
        engine = QueryEngine(artifact, cache_size=2)
        engine.paths(4, 1)
        engine.paths(4, 2)
        engine.paths(4, 3)  # evicts (paths, 4, 1)
        stats = engine.cache_stats()
        assert stats["entries"] == 2
        engine.paths(4, 1)  # must recompute
        assert engine.cache_stats()["misses"] == 4

    def test_lru_order_recency(self, artifact):
        engine = QueryEngine(artifact, cache_size=2)
        engine.paths(4, 1)
        engine.paths(4, 2)
        engine.paths(4, 1)  # refresh: (4, 1) is now most recent
        engine.paths(4, 3)  # evicts (4, 2), not (4, 1)
        engine.paths(4, 1)
        assert engine.cache_stats()["hits"] == 2

    def test_errors_are_not_cached(self, engine):
        for _ in range(2):
            with pytest.raises(QueryError):
                engine.paths(999, 1)
        stats = engine.cache_stats()
        assert stats["errors"] == 2
        assert stats["entries"] == 0

    def test_queries_flow_through_registry(self, engine):
        engine.paths(4, 1)
        snapshot = get_registry().snapshot()
        assert snapshot["counters"]["serve.queries"] == 1
        assert snapshot["histograms"]["serve.query_seconds"]["count"] == 1

    def test_rejects_silly_capacity(self, artifact):
        with pytest.raises(ValueError):
            QueryEngine(artifact, cache_size=0)

    def test_thread_safety_under_concurrent_queries(self, artifact):
        engine = QueryEngine(artifact, cache_size=4)
        errors = []

        def worker():
            try:
                for _ in range(50):
                    assert engine.paths(4, 1).paths
                    engine.diversity(4, 2)
                    engine.lookup(str(prefix_for_asn(1)), 2)
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        stats = engine.cache_stats()
        assert stats["queries"] == 8 * 50 * 3
        assert stats["hits"] + stats["misses"] == stats["queries"]


class TestDescribe:
    def test_summary_fields(self, engine, artifact):
        described = engine.describe()
        assert described["origins"] == len(artifact.origins)
        assert described["observers"] == len(artifact.observers)
        assert described["pairs"] == artifact.pair_count
        assert described["quarantined"] == 1
        assert described["meta"] == {"argv": ["test"]}
