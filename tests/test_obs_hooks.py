"""Tests for the trace/metrics hooks in engine, retry and refine.

Covers satellite (c): budget-exhaustion accounting must be visible —
a starved ``simulate_prefix`` is reported through a trace event, a
registry counter and ``EngineStats.budget_exhaustions``, never silently
truncated.
"""

import pytest

from repro.bgp.engine import EngineStats, simulate, simulate_prefix
from repro.bgp.network import Network
from repro.core.build import build_initial_model
from repro.core.refine import RefinementConfig, Refiner
from repro.errors import ConvergenceError
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.obs.trace import (
    EVENT_BUDGET_EXHAUSTED,
    EVENT_DECISION,
    EVENT_POLICY_INSTALL,
    EVENT_RETRY,
    RecordingTracer,
    tracing,
)
from repro.resilience.faults import inject_dispute_wheel
from repro.resilience.retry import (
    RetryPolicy,
    simulate_network_with_retry,
    simulate_prefix_with_retry,
)
from repro.topology.dataset import ObservedRoute, PathDataset


@pytest.fixture
def registry():
    """A fresh global registry for the duration of one test."""
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)


def line_network(length=4):
    """AS1 - AS2 - ... - ASn chain originating at ASn."""
    net = Network("line")
    routers = [net.add_router(asn) for asn in range(1, length + 1)]
    for left, right in zip(routers, routers[1:]):
        net.connect(left, right)
    prefix = Prefix("10.0.0.0/24")
    net.originate(routers[-1], prefix)
    return net, prefix


class TestBudgetExhaustionVisibility:
    def test_starved_simulation_raises_with_counter_and_event(self, registry):
        net, prefix = line_network()
        tracer = RecordingTracer()
        with tracing(tracer):
            with pytest.raises(ConvergenceError):
                simulate_prefix(net, prefix, max_messages=1)
        assert registry.counter("engine.budget_exhausted").value == 1
        (event,) = tracer.events(EVENT_BUDGET_EXHAUSTED)
        assert event["prefix"] == str(prefix)
        assert event["budget"] == 1
        assert event["messages"] > event["budget"]

    def test_quarantine_mode_reports_in_stats(self, registry):
        net, prefix = line_network()
        stats = simulate(net, max_messages=1, on_divergence="quarantine")
        assert stats.budget_exhaustions == 1
        assert stats.diverged == [prefix]
        assert stats.per_prefix_messages[prefix] > 1

    def test_retry_accounts_every_failed_attempt(self, registry):
        net, prefix = line_network(length=5)
        policy = RetryPolicy(max_attempts=5, initial_budget=1, budget_growth=4.0)
        tracer = RecordingTracer()
        with tracing(tracer):
            stats, outcome = simulate_prefix_with_retry(
                net, prefix, policy=policy
            )
        assert outcome.attempts > 1
        # every attempt before the surviving one exhausted a budget
        assert stats.budget_exhaustions == outcome.attempts - 1
        assert len(tracer.events(EVENT_RETRY)) == outcome.attempts - 1
        assert registry.counter("retry.retries").value == outcome.attempts - 1

    def test_diverged_prefix_reports_all_attempts(self, registry):
        # triangle 1-2-3 around an originating hub AS4: the classic gadget
        net = Network("gadget")
        spokes = {asn: net.add_router(asn) for asn in (1, 2, 3)}
        hub = net.add_router(4)
        prefix = Prefix("10.0.0.0/24")
        net.originate(hub, prefix)
        for router in spokes.values():
            net.connect(router, hub)
        for a, b in ((1, 2), (2, 3), (3, 1)):
            net.connect(spokes[a], spokes[b])
        inject_dispute_wheel(net, prefix, (1, 2, 3))
        policy = RetryPolicy(max_attempts=2, initial_budget=50, budget_cap=100)
        stats, outcome = simulate_prefix_with_retry(net, prefix, policy=policy)
        assert outcome.status == "diverged"
        assert stats.budget_exhaustions == outcome.attempts
        assert registry.counter("retry.quarantined").value == 1

    def test_budget_exhaustions_surface_in_resilience_to_dict(self, registry):
        net, prefix = line_network()
        result = simulate_network_with_retry(
            net, policy=RetryPolicy(max_attempts=3, initial_budget=1)
        )
        document = result.to_dict()
        assert "budget_exhaustions" in document
        assert document["budget_exhaustions"] == result.engine.budget_exhaustions
        assert document["budget_exhaustions"] > 0

    def test_stats_merge_folds_exhaustions(self):
        a = EngineStats(budget_exhaustions=2)
        a.merge(EngineStats(budget_exhaustions=3))
        assert a.budget_exhaustions == 5


class TestEngineTracing:
    def test_decision_events_emitted_while_tracing(self):
        net, prefix = line_network()
        tracer = RecordingTracer()
        with tracing(tracer):
            simulate_prefix(net, prefix)
        events = tracer.events(EVENT_DECISION)
        assert events
        assert all(e["prefix"] == str(prefix) for e in events)
        routers = {e["router"] for e in events}
        assert "AS1.r1" in routers

    def test_tracing_does_not_change_results(self, registry):
        net_plain, prefix = line_network(length=5)
        plain = simulate_prefix(net_plain, prefix)
        net_traced, _ = line_network(length=5)
        with tracing(RecordingTracer()):
            traced = simulate_prefix(net_traced, prefix)
        assert plain.messages == traced.messages
        assert plain.decisions == traced.decisions
        for router_id, router in net_plain.routers.items():
            mine = router.best(prefix)
            theirs = net_traced.routers[router_id].best(prefix)
            assert (mine is None) == (theirs is None)
            if mine is not None:
                assert mine.as_path == theirs.as_path

    def test_engine_metrics_recorded(self, registry):
        net, prefix = line_network()
        simulate_prefix(net, prefix)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["engine.prefixes"] == 1
        assert snapshot["counters"]["engine.messages"] > 0
        assert snapshot["histograms"]["engine.messages_per_prefix"]["count"] == 1


class TestRefineObservability:
    @staticmethod
    def _training():
        P = Prefix("10.0.0.0/24")
        full = PathDataset()
        for index, path in enumerate(((1, 3, 4), (1, 2, 4))):
            full.add(ObservedRoute(f"p{index}", path[0], P, ASPath(path)))
        training = PathDataset()
        training.add(ObservedRoute("t0", 1, P, ASPath((1, 3, 4))))
        return full, training

    def test_iteration_spans_and_install_events(self, registry):
        full, training = self._training()
        model = build_initial_model(full)
        tracer = RecordingTracer()
        with tracing(tracer):
            result = Refiner(model, training, RefinementConfig()).run()
        assert result.converged
        spans = tracer.spans("refine-iteration")
        assert len(spans) == result.iteration_count
        installs = tracer.events(EVENT_POLICY_INSTALL)
        assert installs
        assert all(e["iteration"] >= 1 for e in installs)

    def test_refine_metrics_recorded(self, registry):
        full, training = self._training()
        model = build_initial_model(full)
        result = Refiner(model, training, RefinementConfig()).run()
        snapshot = registry.snapshot()
        assert (
            snapshot["counters"]["refine.iterations"] == result.iteration_count
        )
        assert snapshot["counters"]["refine.policies_installed"] > 0
        assert snapshot["gauges"]["refine.match_rate"] == 1.0
        assert (
            snapshot["histograms"]["refine.iteration_seconds"]["count"]
            == result.iteration_count
        )

    def test_installed_clauses_stamped_with_iteration(self, registry):
        full, training = self._training()
        model = build_initial_model(full)
        Refiner(model, training, RefinementConfig()).run()
        stamped = [
            clause.iteration
            for session in model.network.sessions.values()
            for route_map in (session.import_map, session.export_map)
            if route_map is not None
            for clause in route_map.clauses()
            if clause.tag is not None
        ]
        assert stamped
        assert all(iteration >= 1 for iteration in stamped)
