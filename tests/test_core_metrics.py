"""Unit tests for the Section 4.2 match metrics and Table 2 agreement."""

import pytest

from repro.bgp.policy import Action, Clause, Match
from repro.core.build import build_initial_model
from repro.core.metrics import (
    AgreementCategory,
    MatchKind,
    MatchReport,
    classify_agreement,
    classify_route_match,
    evaluate_agreement,
    evaluate_dataset,
    unique_cases,
)
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.topology.dataset import ObservedRoute, PathDataset

P = Prefix("10.0.0.0/24")


def dataset_from_paths(*paths):
    ds = PathDataset()
    for index, path in enumerate(paths):
        ds.add(ObservedRoute(f"p{index}", path[0], P, ASPath(path)))
    return ds


@pytest.fixture
def diamond_model():
    """AS1 - {AS2, AS3} - AS4 diamond as an initial model, simulated."""
    ds = dataset_from_paths((1, 2, 4), (1, 3, 4))
    model = build_initial_model(ds)
    model.simulate_all()
    return model


class TestClassifyRouteMatch:
    def test_rib_out_for_chosen_branch(self, diamond_model):
        # lowest router-id branch is via AS2
        assert (
            classify_route_match(diamond_model, 1, (1, 2, 4)) is MatchKind.RIB_OUT
        )

    def test_potential_rib_out_for_tie_lost_branch(self, diamond_model):
        assert (
            classify_route_match(diamond_model, 1, (1, 3, 4))
            is MatchKind.POTENTIAL_RIB_OUT
        )

    def test_rib_in_when_longer_path_observed(self):
        ds = dataset_from_paths((1, 2, 4), (1, 3, 2, 4))
        model = build_initial_model(ds)
        model.simulate_all()
        assert classify_route_match(model, 1, (1, 3, 2, 4)) is MatchKind.RIB_IN

    def test_none_when_route_filtered(self, diamond_model):
        prefix = diamond_model.canonical_prefix(4)
        router_1 = diamond_model.quasi_routers(1)[0]
        router_3 = diamond_model.quasi_routers(3)[0]
        session = diamond_model.network.get_session(router_3, router_1)
        session.ensure_export_map().append(Clause(Match(prefix=prefix), Action.DENY))
        diamond_model.simulate_origin(4)
        assert classify_route_match(diamond_model, 1, (1, 3, 4)) is MatchKind.NONE

    def test_origin_observation_is_rib_out(self, diamond_model):
        assert classify_route_match(diamond_model, 4, (4,)) is MatchKind.RIB_OUT

    def test_rejects_path_not_starting_at_observer(self, diamond_model):
        with pytest.raises(ValueError):
            classify_route_match(diamond_model, 1, (2, 4))

    def test_match_kind_helper(self):
        assert MatchKind.RIB_OUT.is_rib_in_or_better
        assert MatchKind.RIB_IN.is_rib_in_or_better
        assert not MatchKind.NONE.is_rib_in_or_better


class TestClassifyAgreement:
    def test_agree(self, diamond_model):
        assert (
            classify_agreement(diamond_model, 1, (1, 2, 4))
            is AgreementCategory.AGREE
        )

    def test_tie_break_category(self, diamond_model):
        assert (
            classify_agreement(diamond_model, 1, (1, 3, 4))
            is AgreementCategory.TIE_BREAK
        )

    def test_shorter_exists_category(self):
        ds = dataset_from_paths((1, 2, 4), (1, 3, 2, 4))
        model = build_initial_model(ds)
        model.simulate_all()
        assert (
            classify_agreement(model, 1, (1, 3, 2, 4))
            is AgreementCategory.SHORTER_EXISTS
        )

    def test_not_available_category(self, diamond_model):
        prefix = diamond_model.canonical_prefix(4)
        router_1 = diamond_model.quasi_routers(1)[0]
        router_3 = diamond_model.quasi_routers(3)[0]
        session = diamond_model.network.get_session(router_3, router_1)
        session.ensure_export_map().append(Clause(Match(prefix=prefix), Action.DENY))
        diamond_model.simulate_origin(4)
        assert (
            classify_agreement(diamond_model, 1, (1, 3, 4))
            is AgreementCategory.NOT_AVAILABLE
        )


class TestAggregation:
    def test_unique_cases_dedupe(self):
        ds = PathDataset(
            [
                ObservedRoute("a", 1, P, ASPath((1, 2, 4))),
                ObservedRoute("b", 1, P, ASPath((1, 2, 4))),
                ObservedRoute("a", 1, Prefix("10.0.1.0/24"), ASPath((1, 2, 4))),
            ]
        )
        assert unique_cases(ds) == [(1, (1, 2, 4))]

    def test_evaluate_dataset_counts(self, diamond_model):
        ds = dataset_from_paths((1, 2, 4), (1, 3, 4))
        report = evaluate_dataset(diamond_model, ds)
        assert report.total == 2
        assert report.counts[MatchKind.RIB_OUT] == 1
        assert report.counts[MatchKind.POTENTIAL_RIB_OUT] == 1
        assert report.tie_break_or_better_rate == 1.0

    def test_coverage_by_origin(self, diamond_model):
        ds = dataset_from_paths((1, 2, 4), (1, 3, 4))
        report = evaluate_dataset(diamond_model, ds)
        matched, total = report.coverage_by_origin[4]
        assert (matched, total) == (1, 2)
        assert report.prefixes_with_coverage(0.5) == 1
        assert report.prefixes_with_coverage(1.0) == 0

    def test_report_rates_empty(self):
        report = MatchReport()
        assert report.rib_out_rate == 0.0
        assert report.rib_in_or_better_rate == 0.0

    def test_as_dict_keys(self, diamond_model):
        ds = dataset_from_paths((1, 2, 4))
        report = evaluate_dataset(diamond_model, ds)
        flat = report.as_dict()
        assert flat["rib_out"] == 1.0
        assert "origins_100%" in flat

    def test_evaluate_agreement_totals(self, diamond_model):
        ds = dataset_from_paths((1, 2, 4), (1, 3, 4))
        counts = evaluate_agreement(diamond_model, ds)
        assert sum(counts.values()) == 2


class TestMatchReportHelpers:
    """Direct coverage of the rate/coverage arithmetic (no model needed)."""

    @staticmethod
    def report(rib_out=0, potential=0, rib_in=0, none=0):
        report = MatchReport()
        report.counts[MatchKind.RIB_OUT] = rib_out
        report.counts[MatchKind.POTENTIAL_RIB_OUT] = potential
        report.counts[MatchKind.RIB_IN] = rib_in
        report.counts[MatchKind.NONE] = none
        return report

    def test_rate_per_kind(self):
        report = self.report(rib_out=2, potential=1, rib_in=1, none=4)
        assert report.total == 8
        assert report.rate(MatchKind.RIB_OUT) == 0.25
        assert report.rate(MatchKind.NONE) == 0.5

    def test_tie_break_or_better_combines_two_kinds(self):
        report = self.report(rib_out=3, potential=1, rib_in=4)
        assert report.tie_break_or_better_rate == 0.5

    def test_rib_in_or_better_is_complement_of_none(self):
        report = self.report(rib_out=1, rib_in=1, none=2)
        assert report.rib_in_or_better_rate == 0.5

    def test_empty_report_rates_are_zero_not_nan(self):
        report = self.report()
        assert report.total == 0
        assert report.rate(MatchKind.RIB_OUT) == 0.0
        assert report.tie_break_or_better_rate == 0.0
        assert report.rib_in_or_better_rate == 0.0

    def test_coverage_thresholds(self):
        report = self.report()
        report.coverage_by_origin = {
            4: (2, 2),   # 100%
            5: (9, 10),  # 90%
            6: (1, 2),   # 50%
            7: (0, 3),   # 0%
        }
        assert report.origin_count == 4
        assert report.prefixes_with_coverage(1.0) == 1
        assert report.prefixes_with_coverage(0.9) == 2
        assert report.prefixes_with_coverage(0.5) == 3
        assert report.prefixes_with_coverage(0.0) == 4

    def test_coverage_ignores_empty_origins(self):
        report = self.report()
        report.coverage_by_origin = {4: (0, 0)}
        assert report.prefixes_with_coverage(0.0) == 0

    def test_coverage_summary_fractions(self):
        report = self.report()
        report.coverage_by_origin = {4: (2, 2), 5: (1, 2)}
        summary = report.coverage_summary()
        assert summary["100%"] == 0.5
        assert summary[">=50%"] == 1.0

    def test_coverage_summary_empty_is_all_zero(self):
        summary = self.report().coverage_summary()
        assert summary == {">=50%": 0.0, ">=90%": 0.0, "100%": 0.0}
