"""Tests for the experiment harness (on a tiny workload)."""

import pytest

from repro.data.synthesis import SyntheticConfig
from repro.experiments import (
    ablations,
    fig2,
    fig3,
    fig8,
    prepare,
    scaling,
    table1,
    table2,
    table3,
    table4,
    table5,
)
from repro.experiments.report import ExperimentResult, format_table
from repro.experiments.workloads import Workload

TINY = Workload(
    name="tiny",
    config=SyntheticConfig(seed=2, n_level1=3, n_level2=5, n_other=8, n_stub=16),
    n_observation_ases=10,
    multi_point_fraction=0.5,
)


@pytest.fixture(scope="module")
def prepared():
    return prepare(TINY)


class TestFormatTable:
    def test_alignment_and_headers(self):
        text = format_table(["a", "bb"], [[1, 0.5], ["xx", 2.0]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "50.0%" in text and "2.00" in text

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_result_render_contains_everything(self):
        result = ExperimentResult("X1", "demo", headers=["k"], rows=[["v"]])
        result.metrics["m"] = 0.25
        result.note("hello")
        text = result.render()
        assert "X1" in text and "demo" in text and "25.0%" in text and "hello" in text


class TestPrepare:
    def test_caches(self):
        assert prepare(TINY) is prepare(TINY)

    def test_pipeline_artifacts(self, prepared):
        assert prepared.dataset.summary()["routes"] > 0
        assert prepared.level1
        assert prepared.training.observation_points()
        assert prepared.validation.observation_points()
        assert not (
            set(prepared.training.observation_points())
            & set(prepared.validation.observation_points())
        )


class TestSection3Experiments:
    def test_fig2_fractions_sum_to_one(self, prepared):
        result = fig2.run(prepared)
        assert abs(sum(row[2] for row in result.rows) - 1.0) < 1e-9
        assert 0.0 <= result.metrics["fraction_multipath"] <= 1.0

    def test_table1_quantiles_monotone(self, prepared):
        result = table1.run(prepared)
        values = [row[1] for row in result.rows]
        assert values == sorted(values)

    def test_fig3_extracts_most_diverse(self, prepared):
        result = fig3.run(prepared)
        assert result.metrics["distinct_paths"] >= 1
        assert len(result.rows) == result.metrics["distinct_paths"]


class TestTable2:
    def test_rows_cover_all_categories(self, prepared):
        result = table2.run(prepared)
        labels = {row[0] for row in result.rows}
        assert "AS-paths which agree" in labels
        assert "  AS-path not available" in labels
        # measured shares sum to 1 across the exclusive categories
        exclusive = [
            row for row in result.rows if row[0] != "AS-paths which disagree"
        ]
        assert abs(sum(row[1] for row in exclusive) - 1.0) < 1e-9

    def test_policy_baseline_not_better_at_availability(self, prepared):
        """Relationship filters can only remove routes, never add them."""
        result = table2.run(prepared)
        by_label = {row[0]: row for row in result.rows}
        shortest_na = by_label["  AS-path not available"][1]
        policies_na = by_label["  AS-path not available"][3]
        assert policies_na >= shortest_na - 1e-9


class TestRefinementExperiments:
    def test_table3_training_converges(self, prepared):
        result = table3.run(prepared)
        assert result.metrics["converged"] == 1.0
        assert result.metrics["final_training_rib_out"] == 1.0

    def test_table4_validation_beats_baselines(self, prepared):
        baseline = table2.run(prepared)
        result = table4.run(prepared)
        assert (
            result.metrics["validation_rib_out"]
            > baseline.metrics["shortest_agree"] - 0.2
        )
        assert result.metrics["validation_tie_break_or_better"] > 0.5

    def test_table5_origin_split_runs(self, prepared):
        result = table5.run(prepared)
        assert result.metrics["converged"] == 1.0
        assert 0.0 <= result.metrics["validation_rib_out"] <= 1.0

    def test_fig8_distribution(self, prepared):
        result = fig8.run(prepared)
        assert result.metrics["single_router_fraction"] > 0.3
        assert result.metrics["max_quasi_routers"] >= 1
        total = sum(row[1] for row in result.rows)
        assert total == result.metrics["ases"]


class TestAblations:
    def test_observation_point_sweep_monotone_trend(self, prepared):
        result = ablations.observation_points(prepared, fractions=(0.3, 1.0))
        assert len(result.rows) == 2
        low, high = result.rows[0][3], result.rows[1][3]
        assert high >= low - 0.1  # allow noise, expect improvement

    def test_mechanism_ablation_full_wins_training(self, prepared):
        result = ablations.policy_mechanisms(prepared)
        rates = {row[0]: row[3] for row in result.rows}
        assert rates["full (paper)"] == 1.0
        assert rates["no policies"] < 1.0
        assert rates["no duplication"] < 1.0


class TestScaling:
    def test_scaling_rows(self):
        result = scaling.run(TINY, factors=(0.5, 1.0))
        assert len(result.rows) == 2
        # larger topology, more messages
        assert result.rows[1][5] > result.rows[0][5]


class TestDeflection:
    def test_ground_truth_is_forwarding_consistent(self, prepared):
        from repro.experiments import deflection

        result = deflection.run(prepared, samples=500)
        assert result.metrics["loop_rate"] == 0.0
        assert result.metrics["agreement"] > 0.95
