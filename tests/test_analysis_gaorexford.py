"""Tests for the static Gao-Rexford compliance pass and provider cycles."""

from repro.analysis import analyze_network, provider_customer_cycles
from repro.analysis.gaorexford import RULE_VALLEY_EXPORT, analyze_gao_rexford
from repro.analysis.findings import Severity
from repro.analysis.topology_lint import (
    RULE_PROVIDER_CYCLE,
    provider_cycle_findings,
)
from repro.bgp.network import Network
from repro.bgp.policy import Action, Clause, Match
from repro.relationships.policies import (
    TAG_FROM_PEER,
    TAG_FROM_PROVIDER,
    apply_relationship_policies,
)
from repro.relationships.types import Relationship, RelationshipMap


def hierarchy():
    """AS1 provider of AS2 and AS3; AS2--AS3 peers; AS4 customer of AS3."""
    rels = RelationshipMap()
    rels.set(1, 2, Relationship.CUSTOMER)
    rels.set(1, 3, Relationship.CUSTOMER)
    rels.set(2, 3, Relationship.PEER)
    rels.set(3, 4, Relationship.CUSTOMER)
    net = Network("gao")
    routers = {asn: net.add_router(asn) for asn in (1, 2, 3, 4)}
    for a, b in ((1, 2), (1, 3), (2, 3), (3, 4)):
        net.connect(routers[a], routers[b])
    return net, rels


class TestValleyExport:
    def test_bare_network_leaks_on_every_restricted_session(self):
        net, rels = hierarchy()
        findings = analyze_gao_rexford(net, rels)
        assert findings
        assert all(f.rule == RULE_VALLEY_EXPORT for f in findings)
        assert all(f.severity is Severity.ERROR for f in findings)
        # sessions towards customers are unrestricted: no finding names a
        # customer-facing announcer/receiver direction like 1 -> 2
        flagged_pairs = {tuple(f.asns) for f in findings}
        assert (2, 3) in flagged_pairs  # peer to peer
        assert (1, 2) in flagged_pairs  # 2 exporting up to its provider 1

    def test_relationship_policies_certify_clean(self):
        net, rels = hierarchy()
        apply_relationship_policies(net, rels)
        assert analyze_gao_rexford(net, rels) == []

    def test_single_missing_deny_is_named(self):
        net, rels = hierarchy()
        apply_relationship_policies(net, rels)
        # break exactly one direction: AS2's export towards its peer AS3
        two = net.as_routers(2)[0]
        three = net.as_routers(3)[0]
        session = net.get_session(two, three)
        session.export_map.remove_if(
            lambda clause: clause.match.community == TAG_FROM_PROVIDER
        )
        findings = analyze_gao_rexford(net, rels)
        assert len(findings) == 1
        finding = findings[0]
        assert finding.asns == (2, 3)
        assert "provider-learned" in finding.message
        assert "peer-learned" not in finding.message
        assert any(f"{TAG_FROM_PROVIDER:#x}" in c for c in finding.clauses)

    def test_permit_before_deny_is_a_violation(self):
        net, rels = hierarchy()
        apply_relationship_policies(net, rels)
        two = net.as_routers(2)[0]
        three = net.as_routers(3)[0]
        session = net.get_session(two, three)
        # a catch-all permit ahead of the denies decides tagged routes
        session.export_map.prepend(Clause(Match(), Action.PERMIT))
        findings = analyze_gao_rexford(net, rels)
        assert any(f.asns == (2, 3) for f in findings)

    def test_sibling_and_unknown_sessions_are_not_flagged(self):
        rels = RelationshipMap()
        rels.set(1, 2, Relationship.SIBLING)
        net = Network("siblings")
        one = net.add_router(1)
        two = net.add_router(2)
        net.connect(one, two)
        three = net.add_router(3)
        net.connect(two, three)  # 2--3 stays UNKNOWN
        assert analyze_gao_rexford(net, rels) == []


class TestProviderCycles:
    def cyclic(self):
        rels = RelationshipMap()
        rels.set(1, 2, Relationship.CUSTOMER)  # 2 buys from 1
        rels.set(2, 3, Relationship.CUSTOMER)  # 3 buys from 2
        rels.set(3, 1, Relationship.CUSTOMER)  # 1 buys from 3: cycle
        rels.set(1, 9, Relationship.CUSTOMER)  # acyclic spur
        return rels

    def test_cycle_is_detected_and_sorted(self):
        assert provider_customer_cycles(self.cyclic()) == [[1, 2, 3]]

    def test_acyclic_hierarchy_has_no_cycles(self):
        _net, rels = hierarchy()
        assert provider_customer_cycles(rels) == []
        assert provider_cycle_findings(rels) == []

    def test_cycle_finding_is_an_error_naming_the_ases(self):
        findings = provider_cycle_findings(self.cyclic())
        assert len(findings) == 1
        finding = findings[0]
        assert finding.rule == RULE_PROVIDER_CYCLE
        assert finding.severity is Severity.ERROR
        assert finding.asns == (1, 2, 3)
        assert "provider-customer cycle" in finding.message

    def test_gao_pass_reports_cycles_first(self):
        net = Network("cycle")
        routers = {asn: net.add_router(asn) for asn in (1, 2, 3)}
        net.connect(routers[1], routers[2])
        findings = analyze_gao_rexford(net, self.cyclic())
        assert findings[0].rule == RULE_PROVIDER_CYCLE


class TestAnalyzerIntegration:
    def test_gao_pass_needs_relationships(self):
        net, rels = hierarchy()
        without = analyze_network(net, passes=("gao",))
        assert without.findings == []
        with_rels = analyze_network(net, passes=("gao",), relationships=rels)
        assert with_rels.findings
        assert {f.rule for f in with_rels.findings} == {RULE_VALLEY_EXPORT}

    def test_all_passes_include_gao_when_relationships_given(self):
        net, rels = hierarchy()
        apply_relationship_policies(net, rels)
        report = analyze_network(net, relationships=rels)
        assert not any(
            f.rule == RULE_VALLEY_EXPORT for f in report.findings
        )
        assert "gao" in report.passes

    def test_tags_cover_both_restricted_directions(self):
        # the import side sets the tags the export denies rely on
        assert TAG_FROM_PEER != TAG_FROM_PROVIDER
