"""Tests for decision provenance (repro.obs.explain / ``repro explain``)."""

import pytest

from repro.core.build import build_initial_model
from repro.core.metrics import unique_cases
from repro.core.refine import FILTER_TAG, RANK_TAG, RefinementConfig, Refiner
from repro.errors import TopologyError
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.obs.explain import explain_prefix
from repro.topology.dataset import ObservedRoute, PathDataset

P = Prefix("10.0.0.0/24")


def dataset_from_paths(*paths):
    ds = PathDataset()
    for index, path in enumerate(paths):
        ds.add(ObservedRoute(f"p{index}", path[0], P, ASPath(path)))
    return ds


@pytest.fixture(scope="module")
def refined():
    """A refined diamond: training observes the tie-losing AS3 branch."""
    full = dataset_from_paths((1, 3, 4), (1, 2, 4))
    training = dataset_from_paths((1, 3, 4))
    model = build_initial_model(full)
    result = Refiner(model, training, RefinementConfig()).run()
    assert result.converged
    return model, training


class TestExplainPrefix:
    def test_unknown_prefix_raises(self, refined):
        model, _ = refined
        with pytest.raises(TopologyError):
            explain_prefix(model, Prefix("203.0.113.0/24"))

    def test_replay_summary(self, refined):
        model, _ = refined
        prefix = model.canonical_prefix(4)
        explanation = explain_prefix(model, prefix, observer_asn=1)
        assert explanation.origin == 4
        assert explanation.observer == 1
        assert explanation.status == "converged"
        assert explanation.attempts == 1
        assert explanation.messages > 0
        assert explanation.decisions > 0
        assert explanation.retries == 0

    def test_walk_reaches_the_origin(self, refined):
        model, _ = refined
        prefix = model.canonical_prefix(4)
        explanation = explain_prefix(model, prefix, observer_asn=1)
        assert explanation.hops[0].asn == 1
        assert explanation.hops[-1].asn == 4
        assert explanation.hops[-1].originates

    def test_every_hop_names_a_decisive_step(self, refined):
        model, _ = refined
        prefix = model.canonical_prefix(4)
        explanation = explain_prefix(model, prefix, observer_asn=1)
        for hop in explanation.hops:
            assert hop.best_path is not None
            assert hop.decisive_step not in ("", "no-route")

    def test_winner_marked_and_losers_attributed(self, refined):
        model, _ = refined
        prefix = model.canonical_prefix(4)
        explanation = explain_prefix(model, prefix, observer_asn=1)
        observer_hop = explanation.hops[0]
        winners = [c for c in observer_hop.candidates if c.eliminated_by is None]
        assert len(winners) == 1
        assert winners[0].as_path == observer_hop.best_path
        assert all(
            c.eliminated_by for c in observer_hop.candidates if c is not winners[0]
        )

    def test_refined_policies_carry_installing_iteration(self, refined):
        model, _ = refined
        prefix = model.canonical_prefix(4)
        explanation = explain_prefix(model, prefix, observer_asn=1)
        refined_clauses = [
            policy
            for hop in explanation.hops
            for policy in hop.policies
            if policy.tag in (RANK_TAG, FILTER_TAG)
        ]
        assert refined_clauses
        assert all(policy.iteration is not None for policy in refined_clauses)
        assert all(policy.iteration >= 1 for policy in refined_clauses)

    def test_every_training_pair_is_explained(self, refined):
        """Acceptance: winning step + installing iteration for every
        training (prefix, observer) pair."""
        model, training = refined
        for observer_asn, path in unique_cases(training):
            prefix = model.canonical_prefix(path[-1])
            explanation = explain_prefix(model, prefix, observer_asn=observer_asn)
            assert explanation.hops, (observer_asn, path)
            observer_hop = explanation.hops[0]
            # the converged model matches training, so the winning path at
            # the observer is the observed one and has a named step
            assert observer_hop.best_path == path[1:]
            assert observer_hop.decisive_step != "no-route"
            consulted = [
                policy for hop in explanation.hops for policy in hop.policies
            ]
            assert all(
                policy.iteration is not None
                for policy in consulted
                if policy.tag in (RANK_TAG, FILTER_TAG)
            )

    def test_flat_mode_without_observer(self, refined):
        model, _ = refined
        prefix = model.canonical_prefix(4)
        explanation = explain_prefix(model, prefix)
        explained_ases = {hop.asn for hop in explanation.hops}
        assert explained_ases == {1, 2, 3, 4}

    def test_render_and_to_dict(self, refined):
        model, _ = refined
        prefix = model.canonical_prefix(4)
        explanation = explain_prefix(model, prefix, observer_asn=1)
        text = explanation.render()
        assert "explain" in text
        assert "selected by step" in text
        document = explanation.to_dict()
        assert document["replay"]["status"] == "converged"
        assert document["hops"][0]["asn"] == 1
