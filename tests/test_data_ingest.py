"""Tests for the fault-tolerant, resumable ingestion pipeline."""

import json
import os
import random
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.data.ingest import IngestConfig, _Breaker, ingest_table_dump
from repro.errors import CheckpointError, IngestError, ShutdownRequested
from repro.obs.metrics import get_registry, labelled
from repro.resilience.checkpoint import load_ingest_checkpoint

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURE = REPO_ROOT / "tests" / "fixtures" / "dirty_feed.dump"

GOOD_PEERS = (3356, 1299, 174, 2914, 6939)
GOOD_TAILS = (15133, 13335, 15169, 32934, 20940, 54113)


def good_line(rng: random.Random) -> bytes:
    peer = rng.choice(GOOD_PEERS)
    tail = rng.sample(GOOD_TAILS, rng.randint(1, 3))
    path = " ".join(str(asn) for asn in [peer] + tail)
    prefix = f"93.{rng.randrange(256)}.{rng.randrange(256)}.0/24"
    return (
        f"TABLE_DUMP2|1131867000|B|4.69.1.1|{peer}|{prefix}|{path}"
        f"|IGP|4.69.1.1|0|0||NAG|"
    ).encode()


def lenient_config(**overrides) -> IngestConfig:
    """An IngestConfig with every abort mechanism off (pure accounting)."""
    defaults = dict(max_malformed_fraction=None, burst_window=0)
    defaults.update(overrides)
    return IngestConfig(**defaults)


class TestFixtureComposition:
    """The checked-in dirty fixture matches its advertised composition."""

    def test_counts_match_the_ci_check_script(self, tmp_path):
        result = ingest_table_dump(FIXTURE)
        report_path = tmp_path / "report.json"
        report_path.write_text(result.report.to_json())
        process = subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "scripts" / "check_ingest_fixture.py"),
                str(report_path),
            ],
            capture_output=True,
            text=True,
        )
        assert process.returncode == 0, process.stdout + process.stderr

    def test_every_line_is_accounted(self):
        result = ingest_table_dump(FIXTURE)
        report = result.report
        assert report.is_accounted()
        assert report.lines == 23
        assert report.accepted == len(result.dataset) == 10

    def test_metrics_mirror_the_report(self):
        registry = get_registry()
        registry.reset()
        result = ingest_table_dump(FIXTURE)
        counters = registry.snapshot()["counters"]
        assert counters["ingest.lines"] == result.report.lines
        assert counters["ingest.accepted"] == result.report.accepted
        for reason, count in result.report.quarantined.items():
            name = labelled("ingest.quarantined", reason=reason)
            assert counters[name] == count


class TestFuzzAccounting:
    """10k randomly corrupted lines: no crash, every line accounted."""

    CORRUPTIONS = [
        lambda line, rng: line,  # leave it alone
        lambda line, rng: b"|".join(line.split(b"|")[:5]),  # truncate fields
        lambda line, rng: line.replace(b"|B|", b"|B|", 1).replace(
            line.split(b"|")[4], b"x" + line.split(b"|")[4], 1
        ),  # non-numeric peer AS
        lambda line, rng: line.replace(b".0/24|", b".0|", 1),  # prefix sans /len
        lambda line, rng: line.replace(
            line.split(b"|")[5], b"10.%d.0.0/16" % rng.randrange(256), 1
        ),  # martian prefix
        lambda line, rng: line.replace(
            line.split(b"|")[6], b"not a path", 1
        ),  # unparseable path
        lambda line, rng: line.replace(
            line.split(b"|")[6],
            line.split(b"|")[6] + b" {64700,64701}",
            1,
        ),  # AS_SET aggregate
        lambda line, rng: line.replace(
            line.split(b"|")[6], b"65000 65001", 1
        ),  # path not starting at peer
        lambda line, rng: line.replace(
            line.split(b"|")[6],
            line.split(b"|")[6] + b" " + line.split(b"|")[6],
            1,
        ),  # looped path (path followed by itself)
        lambda line, rng: line.replace(
            line.split(b"|")[6], line.split(b"|")[6] + b" 23456", 1
        ),  # AS_TRANS bogon on the path
        lambda line, rng: line[:20] + b"\xff\xc3" + line[20:],  # binary bytes
        lambda line, rng: bytes(
            rng.choice(b"abc|{}0123456789 ") for _ in range(rng.randint(1, 60))
        )
        or b"x",  # unstructured junk
        lambda line, rng: b"TBL_DUMP9" + line[11:],  # wrong record type
    ]

    def test_fuzzed_feed_never_crashes_and_accounts_every_line(self, tmp_path):
        rng = random.Random(20060813)
        total = 10_000
        path = tmp_path / "fuzz.dump"
        with open(path, "wb") as handle:
            for _ in range(total):
                line = good_line(rng)
                if rng.random() < 0.7:
                    line = rng.choice(self.CORRUPTIONS)(line, rng)
                if not line.strip() or line.strip().startswith(b"#"):
                    line = b"x"  # keep every written line a record line
                handle.write(line + b"\n")

        result = ingest_table_dump(path, config=lenient_config())
        report = result.report
        assert report.lines == total
        assert report.is_accounted()
        assert report.accepted + report.total_quarantined == total
        assert report.accepted == len(result.dataset)
        # the corruption mix must actually exercise the taxonomy
        assert len(report.quarantined) >= 6
        assert "undecodable-bytes" in report.quarantined
        assert "path-loop" in report.quarantined


class TestCircuitBreaker:
    def test_trips_only_on_a_full_window(self):
        breaker = _Breaker(10, 0.9)
        for _ in range(9):
            assert not breaker.observe(True)
        assert breaker.observe(True)

    def test_good_lines_keep_it_closed(self):
        breaker = _Breaker(10, 0.9)
        for index in range(100):
            assert not breaker.observe(index % 2 == 0)  # 50% damage

    def test_feed_turning_to_garbage_aborts_with_partial_report(self, tmp_path):
        rng = random.Random(7)
        path = tmp_path / "rotten.dump"
        with open(path, "wb") as handle:
            for _ in range(200):
                handle.write(good_line(rng) + b"\n")
            for _ in range(600):
                handle.write(b"garbage|line\n")
        config = lenient_config(burst_window=100, burst_threshold=0.9)
        with pytest.raises(IngestError) as excinfo:
            ingest_table_dump(path, config=config)
        assert "turned to garbage" in str(excinfo.value)
        report = excinfo.value.report
        assert report is not None
        assert report.is_accounted()
        assert report.accepted == 200
        # it tripped long before EOF
        assert report.lines < 800

    def test_disabled_breaker_reads_to_the_end(self, tmp_path):
        path = tmp_path / "rotten.dump"
        path.write_bytes(b"garbage|line\n" * 700)
        result = ingest_table_dump(path, config=lenient_config())
        assert result.report.lines == 700
        assert result.report.accepted == 0


class TestCheckpointResume:
    def _write_feed(self, path, lines=2000, seed=11):
        rng = random.Random(seed)
        with open(path, "wb") as handle:
            for index in range(lines):
                if index % 7 == 3:
                    handle.write(b"garbage|line\n")
                elif index % 13 == 5:
                    handle.write(b"TABLE_DUMP2|1|B|4.69.1.1|\xff\xfe|x\n")
                else:
                    handle.write(good_line(rng) + b"\n")

    def test_interrupted_resume_equals_uninterrupted_run(self, tmp_path):
        feed = tmp_path / "feed.dump"
        self._write_feed(feed)
        config = lenient_config(checkpoint_every=100)

        base = ingest_table_dump(
            feed,
            out_path=tmp_path / "base.clean",
            checkpoint_path=tmp_path / "base.ckpt",
            config=config,
        )

        calls = {"n": 0}

        def stop():
            calls["n"] += 1
            return signal.SIGTERM if calls["n"] == 777 else None

        with pytest.raises(ShutdownRequested):
            ingest_table_dump(
                feed,
                out_path=tmp_path / "resumed.clean",
                checkpoint_path=tmp_path / "resumed.ckpt",
                config=config,
                should_stop=stop,
            )
        checkpoint = load_ingest_checkpoint(tmp_path / "resumed.ckpt")
        assert not checkpoint.complete
        assert checkpoint.line_number == 777

        resumed = ingest_table_dump(
            feed,
            out_path=tmp_path / "resumed.clean",
            checkpoint_path=tmp_path / "resumed.ckpt",
            resume=True,
            config=config,
        )
        assert resumed.resumed_from_line == 777
        assert resumed.report.to_dict() == base.report.to_dict()
        assert (tmp_path / "resumed.clean").read_bytes() == (
            tmp_path / "base.clean"
        ).read_bytes()
        assert len(resumed.dataset) == len(base.dataset)
        assert resumed.dataset.unique_paths() == base.dataset.unique_paths()

    def test_complete_checkpoint_makes_rerun_idempotent(self, tmp_path):
        feed = tmp_path / "feed.dump"
        self._write_feed(feed, lines=300)
        config = lenient_config(checkpoint_every=50)
        first = ingest_table_dump(
            feed,
            out_path=tmp_path / "clean.dump",
            checkpoint_path=tmp_path / "ckpt.json",
            config=config,
        )
        assert load_ingest_checkpoint(tmp_path / "ckpt.json").complete
        again = ingest_table_dump(
            feed,
            out_path=tmp_path / "clean.dump",
            checkpoint_path=tmp_path / "ckpt.json",
            resume=True,
            config=config,
        )
        assert again.resumed_from_line == first.report.lines == 300
        assert again.report.to_dict() == first.report.to_dict()
        assert len(again.dataset) == len(first.dataset)

    def test_checkpoint_refuses_a_different_feed(self, tmp_path):
        feed = tmp_path / "feed.dump"
        self._write_feed(feed, lines=300)
        ingest_table_dump(
            feed,
            out_path=tmp_path / "clean.dump",
            checkpoint_path=tmp_path / "ckpt.json",
            config=lenient_config(),
        )
        self._write_feed(feed, lines=300, seed=99)  # same name, new content
        with pytest.raises(CheckpointError, match="fingerprint"):
            ingest_table_dump(
                feed,
                out_path=tmp_path / "clean.dump",
                checkpoint_path=tmp_path / "ckpt.json",
                resume=True,
                config=lenient_config(),
            )

    def test_resume_requires_the_clean_output(self, tmp_path):
        feed = tmp_path / "feed.dump"
        self._write_feed(feed, lines=300)
        ingest_table_dump(
            feed,
            out_path=tmp_path / "clean.dump",
            checkpoint_path=tmp_path / "ckpt.json",
            config=lenient_config(),
        )
        os.unlink(tmp_path / "clean.dump")
        with pytest.raises(CheckpointError, match="missing or shorter"):
            ingest_table_dump(
                feed,
                out_path=tmp_path / "clean.dump",
                checkpoint_path=tmp_path / "ckpt.json",
                resume=True,
                config=lenient_config(),
            )

    def test_checkpoint_without_out_path_is_an_error(self, tmp_path):
        feed = tmp_path / "feed.dump"
        self._write_feed(feed, lines=10)
        with pytest.raises(ValueError, match="out_path"):
            ingest_table_dump(feed, checkpoint_path=tmp_path / "ckpt.json")


class TestIngestCli:
    def test_fixture_exits_0_and_emits_exact_json(self, tmp_path, capsys):
        from repro.cli import main

        report_path = tmp_path / "report.json"
        code = main(
            ["ingest", str(FIXTURE), "--report", str(report_path), "--json"]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert json.loads(stdout) == json.loads(report_path.read_text())
        data = json.loads(stdout)
        assert data["lines"] == 23
        assert data["quarantined"]["undecodable-bytes"] == 1

    def test_quality_gate_failure_exits_1_with_report(self, tmp_path, capsys):
        from repro.cli import main

        report_path = tmp_path / "report.json"
        code = main(
            [
                "ingest",
                str(FIXTURE),
                "--max-malformed-fraction",
                "0.1",
                "--report",
                str(report_path),
                "--json",
            ]
        )
        assert code == 1
        # the report is still written so the failure is diagnosable
        data = json.loads(report_path.read_text())
        assert data["lines"] == 23

    def test_resume_without_checkpoint_is_usage_error(self, capsys):
        from repro.cli import main

        assert main(["ingest", str(FIXTURE), "--resume"]) == 2
        assert "--checkpoint" in capsys.readouterr().err

    def test_checkpoint_without_out_is_usage_error(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            ["ingest", str(FIXTURE), "--checkpoint", str(tmp_path / "c.json")]
        )
        assert code == 2
        assert "--out" in capsys.readouterr().err

    def test_unreadable_feed_exits_4(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["ingest", str(tmp_path / "missing.dump")]) == 4

    def test_strict_mode_exits_1_naming_the_line(self, capsys):
        from repro.cli import main

        assert main(["ingest", str(FIXTURE), "--strict"]) == 1
        assert "line " in capsys.readouterr().err

    def test_as_rel_rejects_checkpoint_flags(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            [
                "ingest",
                str(FIXTURE),
                "--format",
                "as-rel",
                "--out",
                str(tmp_path / "x"),
            ]
        )
        assert code == 2

    def test_as_rel_feed_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        feed = tmp_path / "as-rel.txt"
        feed.write_text(
            "# provenance\n3356|15133|-1\n3356|1299|0\njunk line\n"
        )
        code = main(
            [
                "ingest",
                str(feed),
                "--format",
                "as-rel",
                "--json",
                "--no-quality-gate",
            ]
        )
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["format"] == "as-rel"
        assert data["accepted"] == 2
        assert data["quarantined"]["malformed-fields"] == 1


class TestSigtermResume:
    """Acceptance: SIGTERM mid-file, then --resume, equals an uninterrupted run."""

    LINES = 50_000

    def _spawn(self, args):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        return subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "ingest", *args],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

    def test_sigterm_then_resume_matches_uninterrupted(self, tmp_path):
        rng = random.Random(42)
        feed = tmp_path / "feed.dump"
        with open(feed, "wb") as handle:
            for index in range(self.LINES):
                if index % 11 == 4:
                    handle.write(b"garbage|line\n")
                else:
                    handle.write(good_line(rng) + b"\n")

        base_args = ["--no-quality-gate", "--checkpoint-every", "500"]

        # Baseline: uninterrupted run.
        process = self._spawn(
            [
                str(feed),
                "--out", str(tmp_path / "base.clean"),
                "--checkpoint", str(tmp_path / "base.ckpt"),
                "--report", str(tmp_path / "base.json"),
                *base_args,
            ]
        )
        assert process.wait(timeout=120) == 0

        # Interrupted run: SIGTERM once the first checkpoint exists.
        ckpt = tmp_path / "run.ckpt"
        run_args = [
            str(feed),
            "--out", str(tmp_path / "run.clean"),
            "--checkpoint", str(ckpt),
            "--report", str(tmp_path / "run.json"),
            *base_args,
        ]
        process = self._spawn(run_args)
        try:
            deadline = time.time() + 60
            while not ckpt.exists() and time.time() < deadline:
                time.sleep(0.01)
                if process.poll() is not None:
                    break
            assert ckpt.exists(), "no checkpoint appeared before the deadline"
            if process.poll() is None:
                process.send_signal(signal.SIGTERM)
            code = process.wait(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
        assert code == 5, "expected the run to be interrupted mid-file"
        assert not load_ingest_checkpoint(ckpt).complete

        # Resume and compare against the baseline.
        process = self._spawn([*run_args, "--resume"])
        assert process.wait(timeout=120) == 0
        assert load_ingest_checkpoint(ckpt).complete

        base_report = json.loads((tmp_path / "base.json").read_text())
        run_report = json.loads((tmp_path / "run.json").read_text())
        assert run_report == base_report
        assert (tmp_path / "run.clean").read_bytes() == (
            tmp_path / "base.clean"
        ).read_bytes()
