"""Unit tests for the hardened CAIDA as-rel parser."""

import io

import pytest

from repro.data.caida import iter_as_rel, read_as_rel
from repro.errors import DatasetError, ParseError
from repro.relationships.types import Relationship

P2C = "3356|15133|-1\n"
PEER = "3356|1299|0\n"
SIBLING = "3356|3549|1|bgp\n"
HEADER = "# source: CAIDA serial-1\n"


class TestIterAsRel:
    def test_relationship_codes(self):
        results = list(iter_as_rel([P2C, PEER, SIBLING]))
        assert [r.record.relationship for r in results] == [
            Relationship.CUSTOMER,
            Relationship.PEER,
            Relationship.SIBLING,
        ]
        assert results[0].record.asn_a == 3356
        assert results[0].record.asn_b == 15133

    def test_comments_and_blanks_are_not_records(self):
        results = list(iter_as_rel([HEADER, "\n", P2C]))
        assert len(results) == 1
        assert results[0].line_number == 3

    @pytest.mark.parametrize(
        "line,reason",
        [
            ("3356|15133\n", "malformed-fields"),
            ("3356|abc|-1\n", "malformed-fields"),
            ("3356|4294967296|-1\n", "malformed-fields"),
            ("3356|3356|0\n", "self-edge"),
            ("3356|15133|2\n", "bad-relationship"),
            ("3356|15133|x\n", "bad-relationship"),
            ("3356|64512|-1\n", "bogon-asn"),
        ],
    )
    def test_typed_rejections(self, line, reason):
        (result,) = iter_as_rel([line])
        assert result.record is None
        assert result.rejection.reason == reason

    def test_bogons_kept_when_disabled(self):
        (result,) = iter_as_rel(["3356|64512|-1\n"], drop_bogons=False)
        assert result.accepted

    def test_undecodable_bytes_quarantine_one_line(self):
        results = list(iter_as_rel([P2C.encode(), b"\xff\xfe|1|0\n", PEER.encode()]))
        assert [r.accepted for r in results] == [True, False, True]
        assert results[1].rejection.reason == "undecodable-bytes"

    def test_strict_mode_names_the_line(self):
        with pytest.raises(ParseError) as excinfo:
            list(iter_as_rel([P2C, "3356|3356|0\n"], strict=True))
        assert "line 2" in str(excinfo.value)
        assert "self-edge" in str(excinfo.value)


class TestReadAsRel:
    def test_builds_graph_and_relationship_map(self):
        result = read_as_rel(io.StringIO(HEADER + P2C + PEER))
        assert result.graph.ases() == {3356, 15133, 1299}
        assert result.graph.has_edge(3356, 15133)
        assert result.relationships.get(3356, 15133) is Relationship.CUSTOMER
        assert result.relationships.get(15133, 3356) is Relationship.PROVIDER
        assert result.report.accepted == 2
        assert result.report.is_accounted()

    def test_duplicate_edges_keep_first_and_are_counted(self):
        result = read_as_rel(io.StringIO(P2C + "3356|15133|0\n"))
        assert result.relationships.get(3356, 15133) is Relationship.CUSTOMER
        assert result.report.modified == {"duplicate-edge": 1}
        assert result.report.accepted == 2  # both lines parsed fine

    def test_mostly_garbage_trips_quality_gate(self):
        with pytest.raises(DatasetError):
            read_as_rel(io.StringIO("junk\n" * 9 + P2C))

    def test_file_with_binary_line_survives(self, tmp_path):
        path = tmp_path / "as-rel.txt"
        path.write_bytes(P2C.encode() + b"\xff\xfe\n" + PEER.encode())
        result = read_as_rel(path)
        assert result.report.quarantined == {"undecodable-bytes": 1}
        assert result.graph.num_edges() == 2
