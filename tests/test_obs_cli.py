"""End-to-end tests for the observability CLI surface:
``repro explain``, ``repro stats``, ``--trace`` and the logging flags."""

import json

import pytest

from repro.cbgp import parse_script
from repro.cli import main
from repro.resilience.health import EXIT_DATA


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    """A refined model + health report + trace produced through the CLI."""
    root = tmp_path_factory.mktemp("obs_cli")
    dump = root / "snapshot.dump"
    assert main(
        ["synthesize", "--seed", "5", "--scale", "0.12", "--points", "8",
         "--out", str(dump)]
    ) == 0
    model = root / "model.cbgp"
    health = root / "health.json"
    trace = root / "trace.jsonl"
    assert main(
        ["refine", str(dump), "--max-iterations", "20", "--out", str(model),
         "--health-report", str(health), "--trace", str(trace)]
    ) == 0
    # pick a real (prefix, observer) pair out of the exported model
    with open(model, encoding="utf-8") as handle:
        network = parse_script(handle)
    prefix = sorted(network.prefixes(), key=str)[0]
    origin = prefix.network >> 16
    observer = sorted(asn for asn in network.ases if asn != origin)[0]
    return {
        "dump": dump,
        "model": model,
        "health": health,
        "trace": trace,
        "prefix": str(prefix),
        "observer": observer,
    }


class TestTraceFlag:
    def test_trace_file_is_jsonl(self, workspace):
        lines = workspace["trace"].read_text().splitlines()
        assert lines
        kinds = {json.loads(line)["kind"] for line in lines}
        assert kinds <= {"span-start", "span-end", "event"}
        assert "event" in kinds

    def test_trace_contains_refine_iteration_spans(self, workspace):
        names = {
            json.loads(line).get("name")
            for line in workspace["trace"].read_text().splitlines()
        }
        assert "refine-iteration" in names


class TestHealthReportContents:
    def test_metrics_snapshot_recorded(self, workspace):
        document = json.loads(workspace["health"].read_text())
        counters = document["metrics"]["counters"]
        assert counters["engine.prefixes"] > 0
        assert "engine.messages_per_prefix" in document["metrics"]["histograms"]

    def test_meta_stamp_recorded(self, workspace):
        document = json.loads(workspace["health"].read_text())
        assert document["meta"]["repro_version"]
        assert document["meta"]["seed"] == 0  # default --split-seed
        assert "refine" in " ".join(document["meta"]["argv"])


class TestStats:
    def test_text_rendering(self, workspace, capsys):
        assert main(["stats", str(workspace["health"])]) == 0
        out = capsys.readouterr().out
        assert "counters:" in out
        assert "engine.messages" in out
        assert "repro_version" in out

    def test_json_rendering(self, workspace, capsys):
        assert main(["stats", str(workspace["health"]), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["metrics"]["counters"]["engine.prefixes"] > 0
        assert document["meta"]["repro_version"]

    def test_missing_report_is_exit_data(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope.json")]) == EXIT_DATA
        assert "error:" in capsys.readouterr().err

    def test_invalid_json_is_exit_data(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{broken")
        assert main(["stats", str(bad)]) == EXIT_DATA


class TestExplain:
    def test_text_explanation_names_step(self, workspace, capsys):
        prefix = workspace["prefix"]
        assert main(["explain", str(workspace["model"]), prefix]) == 0
        out = capsys.readouterr().out
        assert "selected by step:" in out
        assert prefix in out

    def test_json_explanation(self, workspace, capsys):
        prefix = workspace["prefix"]
        assert main(
            ["explain", str(workspace["model"]), prefix, "--json"]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["prefix"] == prefix
        assert document["replay"]["status"] == "converged"
        assert document["hops"]

    def test_observer_walk(self, workspace, capsys):
        observer = workspace["observer"]
        assert main(
            ["explain", str(workspace["model"]), workspace["prefix"],
             "--observer", str(observer), "--json"]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["observer"] == observer
        assert document["hops"][0]["asn"] == observer

    def test_unknown_prefix_is_exit_data(self, workspace, capsys):
        assert main(
            ["explain", str(workspace["model"]), "203.0.113.0/24"]
        ) == EXIT_DATA
        assert "error:" in capsys.readouterr().err

    def test_bad_prefix_text_is_exit_data(self, workspace, capsys):
        assert main(
            ["explain", str(workspace["model"]), "not-a-prefix"]
        ) == EXIT_DATA

    def test_unknown_observer_is_exit_data(self, workspace, capsys):
        assert main(
            ["explain", str(workspace["model"]), workspace["prefix"],
             "--observer", "99999"]
        ) == EXIT_DATA

    def test_missing_model_is_exit_data(self, tmp_path, capsys):
        assert main(
            ["explain", str(tmp_path / "no.cbgp"), "10.0.0.0/24"]
        ) == EXIT_DATA


class TestLoggingFlags:
    def test_log_level_flag_accepted(self, workspace, capsys):
        assert main(
            ["--log-level", "info", "stats", str(workspace["health"])]
        ) == 0

    def test_log_json_flag_accepted(self, workspace, capsys):
        assert main(
            ["--log-json", "--log-level", "debug", "stats",
             str(workspace["health"])]
        ) == 0

    def test_bad_level_is_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["--log-level", "loud", "stats", "x.json"])
        assert excinfo.value.code == 2
