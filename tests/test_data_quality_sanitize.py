"""Unit tests for the record-quality taxonomy and sanitization passes."""

import pytest

from repro.data.quality import (
    AS_SET,
    BOGON_ASN,
    EXPECTED_REASONS,
    MARTIAN_PREFIX,
    PATH_LOOP,
    REASONS,
    IngestReport,
    Rejection,
    is_bogon_asn,
    is_martian_prefix,
)
from repro.data.sanitize import (
    PREPEND_COLLAPSE,
    SanitizeConfig,
    sanitize_route,
)
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.obs.metrics import labelled
from repro.topology.dataset import ObservedRoute


def route(asns, prefix="93.184.216.0/24", observer=None):
    asns = tuple(asns)
    observer = asns[0] if observer is None else observer
    return ObservedRoute("peer|obs", observer, Prefix(prefix), ASPath(asns))


class TestBogonAsn:
    @pytest.mark.parametrize(
        "asn",
        [
            0,  # RFC 7607
            23456,  # AS_TRANS (RFC 4893)
            64496, 64511,  # documentation (RFC 5398)
            64512, 65534,  # private 2-byte (RFC 6996)
            65535,  # reserved all-ones
            65536, 65551,  # documentation 4-byte (RFC 5398)
            4200000000, 4294967294,  # private 4-byte (RFC 6996)
            4294967295,  # reserved all-ones
        ],
    )
    def test_reserved_asns_are_bogon(self, asn):
        assert is_bogon_asn(asn)

    @pytest.mark.parametrize(
        "asn", [1, 3356, 15169, 23455, 23457, 64495, 65552, 4199999999]
    )
    def test_allocatable_asns_are_not(self, asn):
        assert not is_bogon_asn(asn)


class TestMartianPrefix:
    @pytest.mark.parametrize(
        "text",
        [
            "0.0.0.0/8",
            "10.1.2.0/24",
            "100.64.0.0/10",
            "127.0.0.0/8",
            "169.254.10.0/24",
            "172.16.0.0/12",
            "192.0.2.0/24",
            "192.168.99.0/24",
            "198.18.0.0/15",
            "198.51.100.0/24",
            "203.0.113.0/24",
            "224.0.0.0/4",
            "240.0.0.0/4",
        ],
    )
    def test_reserved_space_is_martian(self, text):
        assert is_martian_prefix(Prefix(text))

    @pytest.mark.parametrize(
        "text", ["8.8.8.0/24", "93.184.216.0/24", "172.32.0.0/12", "198.41.0.0/24"]
    )
    def test_public_space_is_not(self, text):
        assert not is_martian_prefix(Prefix(text))


class TestSanitizeRoute:
    def test_clean_route_passes_unchanged(self):
        original = route([3356, 1299, 15133])
        outcome = sanitize_route(original)
        assert outcome.route is original
        assert outcome.rejection is None
        assert outcome.prepends_collapsed == 0

    def test_prepends_collapse_and_are_counted(self):
        outcome = sanitize_route(route([3356, 1299, 1299, 1299, 15133]))
        assert outcome.route.path.asns == (3356, 1299, 15133)
        assert outcome.prepends_collapsed == 2

    def test_loop_is_dropped_with_typed_reason(self):
        outcome = sanitize_route(route([3356, 1299, 174, 1299]), line_number=7)
        assert outcome.route is None
        assert outcome.rejection.reason == PATH_LOOP
        assert outcome.rejection.line_number == 7

    def test_prepending_is_not_a_loop(self):
        outcome = sanitize_route(route([3356, 1299, 1299, 174]))
        assert outcome.route is not None

    def test_loop_judged_after_prepend_collapse(self):
        # 1 2 2 1 really is a loop; the consecutive 2s are not.
        outcome = sanitize_route(route([3356, 1299, 1299, 3356]))
        assert outcome.rejection.reason == PATH_LOOP

    def test_bogon_asn_in_path_is_dropped(self):
        outcome = sanitize_route(route([3356, 23456, 15133]))
        assert outcome.rejection.reason == BOGON_ASN
        assert "23456" in outcome.rejection.detail

    def test_bogon_observer_is_dropped(self):
        outcome = sanitize_route(route([64512, 3356]))
        assert outcome.rejection.reason == BOGON_ASN
        assert "64512" in outcome.rejection.detail

    def test_martian_prefix_is_dropped(self):
        outcome = sanitize_route(route([3356, 1299], prefix="10.0.0.0/8"))
        assert outcome.rejection.reason == MARTIAN_PREFIX

    def test_loop_wins_over_bogon(self):
        # Pass order is fixed: a looped path with a bogon ASN reports the loop.
        outcome = sanitize_route(route([3356, 64512, 3356]))
        assert outcome.rejection.reason == PATH_LOOP

    def test_synthetic_config_keeps_bogons_and_martians(self):
        config = SanitizeConfig.for_synthetic()
        bogon = sanitize_route(route([3356, 64512]), config=config)
        martian = sanitize_route(route([3356], prefix="0.10.0.0/24"), config=config)
        assert bogon.route is not None
        assert martian.route is not None
        # but loops still die
        loop = sanitize_route(route([3356, 1299, 3356]), config=config)
        assert loop.rejection.reason == PATH_LOOP


class TestIngestReport:
    def test_every_line_lands_in_exactly_one_bucket(self):
        report = IngestReport()
        report.record_accept()
        report.record_accept()
        report.record_reject(Rejection(PATH_LOOP, 3))
        report.record_reject(Rejection(AS_SET, 4))
        assert report.lines == 4
        assert report.accepted == 2
        assert report.total_quarantined == 2
        assert report.is_accounted()

    def test_damaged_excludes_expected_reasons(self):
        report = IngestReport()
        report.record_reject(Rejection(AS_SET, 1))
        report.record_reject(Rejection(PATH_LOOP, 2))
        assert AS_SET in EXPECTED_REASONS
        assert report.damaged == 1
        assert report.damaged_fraction == 0.5

    def test_samples_capped_at_three_per_reason(self):
        report = IngestReport()
        for n in range(1, 6):
            report.record_reject(Rejection(PATH_LOOP, n, line=f"line {n}"))
        assert report.quarantined[PATH_LOOP] == 5
        assert len(report.samples[PATH_LOOP]) == 3
        assert report.samples[PATH_LOOP][0]["line_number"] == 1

    def test_dict_round_trip_is_lossless(self):
        report = IngestReport(source="feed.dump")
        report.record_accept()
        report.record_reject(Rejection(BOGON_ASN, 2, detail="AS 0", line="raw"))
        report.record_modified(PREPEND_COLLAPSE, 3)
        rebuilt = IngestReport.from_dict(report.to_dict())
        assert rebuilt.to_dict() == report.to_dict()
        assert rebuilt.is_accounted()

    def test_render_names_reasons_and_counts(self):
        report = IngestReport(source="feed.dump")
        report.record_accept()
        report.record_reject(Rejection(MARTIAN_PREFIX, 2, line="bad line"))
        text = report.render()
        assert "feed.dump" in text
        assert MARTIAN_PREFIX in text
        assert "bad line" in text

    def test_reason_constants_are_unique(self):
        assert len(set(REASONS)) == len(REASONS)

    def test_rejection_describe_names_position(self):
        rejection = Rejection(BOGON_ASN, 17, detail="AS 23456", line="raw|line")
        described = rejection.describe()
        assert described.startswith("line 17: bogon-asn")
        assert "AS 23456" in described


class TestLabelledMetric:
    def test_prometheus_style_rendering(self):
        assert (
            labelled("ingest.quarantined", reason="as-set")
            == 'ingest.quarantined{reason="as-set"}'
        )

    def test_labels_sorted_for_stable_names(self):
        assert labelled("m", b="2", a="1") == 'm{a="1",b="2"}'

    def test_no_labels_is_bare_name(self):
        assert labelled("m") == "m"
