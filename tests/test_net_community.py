"""Unit tests for repro.net.community."""

import pytest

from repro.errors import ParseError
from repro.net.community import NO_ADVERTISE, NO_EXPORT, Community, parse_community


class TestConstruction:
    def test_from_pair(self):
        community = Community(3356, 70)
        assert community.high == 3356
        assert community.low == 70
        assert community.value == (3356 << 16) | 70

    def test_from_raw_value(self):
        assert Community(0x0D1C0046).high == 3356

    def test_from_string(self):
        assert Community("3356:70") == Community(3356, 70)

    def test_rejects_component_overflow(self):
        with pytest.raises(ValueError):
            Community(70000, 1)

    def test_rejects_raw_overflow(self):
        with pytest.raises(ValueError):
            Community(1 << 32)


class TestParsing:
    def test_parses_pair(self):
        assert parse_community("100:200").value == (100 << 16) | 200

    def test_parses_bare_integer(self):
        assert parse_community("12345").value == 12345

    def test_parses_well_known_names(self):
        assert parse_community("no-export") == NO_EXPORT
        assert parse_community("no-advertise") == NO_ADVERTISE

    @pytest.mark.parametrize("bad", ["", "a:b", "1:2:3", "70000:1", "1:70000"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ParseError):
            parse_community(bad)


class TestFormatting:
    def test_str_pair(self):
        assert str(Community(65535, 1)) == "65535:1"

    def test_str_well_known(self):
        assert str(Community(NO_EXPORT)) == "no-export"

    def test_ordering(self):
        assert Community(1, 1) < Community(1, 2) < Community(2, 0)

    def test_int_equality(self):
        assert Community(0, 5) == 5

    def test_hashable(self):
        assert len({Community(1, 2), Community("1:2")}) == 1
