"""Tests for the C-BGP-style config export/parse round-trip."""

import io

import pytest

from repro.bgp import Network, simulate
from repro.bgp.policy import Action, Clause, Match
from repro.cbgp import export_model, export_network, parse_script
from repro.core.build import build_initial_model
from repro.core.model import MODEL_DECISION_CONFIG
from repro.core.refine import Refiner
from repro.errors import ParseError
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.topology.dataset import ObservedRoute, PathDataset

P = Prefix("10.0.0.0/24")


def round_trip(net: Network) -> Network:
    buffer = io.StringIO()
    export_network(net, buffer)
    return parse_script(io.StringIO(buffer.getvalue()))


def build_rich_network() -> Network:
    net = Network()
    r1 = net.add_router(1)
    r2a, r2b = net.add_router(2), net.add_router(2)
    r3 = net.add_router(3)
    net.ases[2].igp.add_link(r2a.router_id, r2b.router_id, 4)
    net.ibgp_full_mesh(2)
    net.connect(r1, r2a)
    net.connect(r2b, r3)
    net.connect(r1, r3)
    session = net.get_session(r3, r1)
    session.ensure_export_map().append(
        Clause(Match(prefix=P, path_len_lt=2), Action.DENY, tag="refine-filter")
    )
    session_in = net.get_session(r2a, r1)
    session_in.ensure_import_map().append(
        Clause(
            Match(from_asn=2),
            Action.PERMIT,
            set_local_pref=90,
            set_med=10,
            prepend=1,
            add_communities=frozenset((77,)),
        )
    )
    net.originate(r3, P)
    return net


class TestRoundTrip:
    def test_stats_preserved(self):
        net = build_rich_network()
        clone = round_trip(net)
        assert clone.stats() == net.stats()

    def test_igp_costs_preserved(self):
        net = build_rich_network()
        clone = round_trip(net)
        routers = clone.as_routers(2)
        assert clone.ases[2].igp.cost(routers[0].router_id, routers[1].router_id) == 4

    def test_policies_preserved_semantically(self):
        net = build_rich_network()
        clone = round_trip(net)
        simulate(net)
        simulate(clone)
        for rid, router in net.routers.items():
            best = router.best(P)
            clone_best = clone.routers[rid].best(P)
            if best is None:
                assert clone_best is None
            else:
                assert clone_best.as_path == best.as_path

    def test_clause_fields_survive(self):
        net = build_rich_network()
        clone = round_trip(net)
        r1 = clone.as_routers(1)[0]
        r2a = clone.as_routers(2)[0]
        session = clone.get_session(r2a, r1)
        clause = next(session.import_map.clauses())
        assert clause.set_local_pref == 90
        assert clause.set_med == 10
        assert clause.prepend == 1
        assert clause.add_communities == frozenset((77,))
        assert clause.match.from_asn == 2

    def test_refined_model_round_trips(self):
        ds = PathDataset(
            [
                ObservedRoute("a", 1, P, ASPath((1, 2, 4))),
                ObservedRoute("b", 1, P, ASPath((1, 3, 4))),
            ]
        )
        model = build_initial_model(ds)
        Refiner(model, ds).run()
        buffer = io.StringIO()
        export_model(model, buffer)
        clone = parse_script(io.StringIO(buffer.getvalue()))
        assert clone.stats() == model.network.stats()
        simulate(clone, config=MODEL_DECISION_CONFIG)
        prefix = model.canonical_prefix(4)
        original_paths = {
            r.best(prefix).as_path
            for r in model.network.as_routers(1)
            if r.best(prefix)
        }
        clone_paths = {
            r.best(prefix).as_path for r in clone.as_routers(1) if r.best(prefix)
        }
        assert clone_paths == original_paths


class TestParserErrors:
    def test_unknown_line_rejected(self):
        with pytest.raises(ParseError):
            parse_script(io.StringIO("bogus directive\n"))

    def test_unterminated_rule_rejected(self):
        text = (
            "net add node 0.1.0.1\n"
            "bgp add router 1 0.1.0.1\n"
            "net add node 0.2.0.1\n"
            "bgp add router 2 0.2.0.1\n"
            "bgp router 0.1.0.1 add peer 2 0.2.0.1\n"
            "bgp router 0.1.0.1 peer 0.2.0.1 filter in add-rule\n"
            '  match "any"\n'
        )
        with pytest.raises(ParseError):
            parse_script(io.StringIO(text))

    def test_asn_mismatch_rejected(self):
        text = "net add node 0.1.0.1\nbgp add router 9 0.1.0.1\n"
        with pytest.raises(ParseError):
            parse_script(io.StringIO(text))

    def test_cross_as_igp_link_rejected(self):
        text = (
            "net add node 0.1.0.1\n"
            "net add node 0.2.0.1\n"
            "net add link 0.1.0.1 0.2.0.1 3\n"
        )
        with pytest.raises(ParseError):
            parse_script(io.StringIO(text))

    def test_comments_ignored(self):
        net = parse_script(io.StringIO("# nothing but comments\n\n"))
        assert net.stats()["routers"] == 0
