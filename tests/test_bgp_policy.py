"""Unit tests for route-maps (repro.bgp.policy)."""

from repro.bgp.policy import Action, Clause, Match, RouteMap
from repro.bgp.route import Route
from repro.net.prefix import Prefix

P1 = Prefix("10.0.0.0/24")
P2 = Prefix("10.0.1.0/24")


def make_route(prefix=P1, **kwargs):
    defaults = dict(as_path=(1, 2, 3), peer_router=100, peer_asn=1)
    defaults.update(kwargs)
    return Route(prefix, **defaults)


class TestMatch:
    def test_empty_match_matches_everything(self):
        assert Match().matches(make_route())

    def test_prefix_match(self):
        assert Match(prefix=P1).matches(make_route(P1))
        assert not Match(prefix=P1).matches(make_route(P2))

    def test_path_len_lt(self):
        assert Match(path_len_lt=4).matches(make_route(as_path=(1, 2, 3)))
        assert not Match(path_len_lt=3).matches(make_route(as_path=(1, 2, 3)))

    def test_path_len_gt(self):
        assert Match(path_len_gt=2).matches(make_route(as_path=(1, 2, 3)))
        assert not Match(path_len_gt=3).matches(make_route(as_path=(1, 2, 3)))

    def test_from_asn_and_router(self):
        route = make_route(peer_asn=7, peer_router=0x70001)
        assert Match(from_asn=7).matches(route)
        assert not Match(from_asn=8).matches(route)
        assert Match(from_router=0x70001).matches(route)
        assert not Match(from_router=0x70002).matches(route)

    def test_path_contains(self):
        assert Match(path_contains=2).matches(make_route(as_path=(1, 2, 3)))
        assert not Match(path_contains=9).matches(make_route(as_path=(1, 2, 3)))

    def test_community(self):
        route = make_route(communities=frozenset((42,)))
        assert Match(community=42).matches(route)
        assert not Match(community=43).matches(route)

    def test_conjunction(self):
        match = Match(prefix=P1, path_len_lt=4, from_asn=1)
        assert match.matches(make_route())
        assert not match.matches(make_route(peer_asn=2))

    def test_describe_mentions_conditions(self):
        text = Match(prefix=P1, path_len_lt=3).describe()
        assert str(P1) in text and "path-length < 3" in text
        assert Match().describe() == "any"


class TestClause:
    def test_deny_returns_none(self):
        assert Clause(Match(), Action.DENY).apply(make_route()) is None

    def test_permit_without_changes_returns_same_object(self):
        route = make_route()
        assert Clause(Match(), Action.PERMIT).apply(route) is route

    def test_set_local_pref_and_med(self):
        out = Clause(Match(), set_local_pref=120, set_med=7).apply(make_route())
        assert out.local_pref == 120 and out.med == 7

    def test_prepend_repeats_head(self):
        out = Clause(Match(), prepend=2).apply(make_route(as_path=(5, 6)))
        assert out.as_path == (5, 5, 5, 6)

    def test_prepend_on_empty_path_is_noop(self):
        route = make_route(as_path=())
        assert Clause(Match(), prepend=3).apply(route) is route

    def test_add_communities(self):
        out = Clause(Match(), add_communities=frozenset((9,))).apply(
            make_route(communities=frozenset((1,)))
        )
        assert out.communities == frozenset((1, 9))

    def test_strip_communities(self):
        out = Clause(
            Match(), strip_communities=True, add_communities=frozenset((9,))
        ).apply(make_route(communities=frozenset((1, 2))))
        assert out.communities == frozenset((9,))

    def test_original_route_is_not_mutated(self):
        route = make_route()
        Clause(Match(), set_med=99).apply(route)
        assert route.med == 0


class TestRouteMap:
    def test_empty_map_permits(self):
        route = make_route()
        assert RouteMap().apply(route) is route

    def test_default_deny(self):
        assert RouteMap(default_action=Action.DENY).apply(make_route()) is None

    def test_first_match_wins(self):
        route_map = RouteMap(
            [
                Clause(Match(prefix=P1), Action.DENY),
                Clause(Match(prefix=P1), set_med=5),
            ]
        )
        assert route_map.apply(make_route(P1)) is None

    def test_prefix_index_routes_to_right_clause(self):
        route_map = RouteMap(
            [
                Clause(Match(prefix=P1), set_med=1),
                Clause(Match(prefix=P2), set_med=2),
            ]
        )
        assert route_map.apply(make_route(P1)).med == 1
        assert route_map.apply(make_route(P2)).med == 2

    def test_generic_clause_order_interleaves_with_indexed(self):
        route_map = RouteMap(
            [
                Clause(Match(from_asn=1), Action.DENY),  # generic, first
                Clause(Match(prefix=P1), set_med=5),
            ]
        )
        assert route_map.apply(make_route(P1, peer_asn=1)) is None
        assert route_map.apply(make_route(P1, peer_asn=2)).med == 5

    def test_non_matching_falls_through_to_default(self):
        route_map = RouteMap([Clause(Match(prefix=P2), Action.DENY)])
        route = make_route(P1)
        assert route_map.apply(route) is route

    def test_remove_by_identity(self):
        clause = Clause(Match(prefix=P1), Action.DENY)
        route_map = RouteMap([clause])
        assert route_map.remove(clause)
        assert not route_map.remove(clause)
        assert route_map.apply(make_route(P1)) is not None

    def test_remove_if_by_tag(self):
        route_map = RouteMap(
            [
                Clause(Match(prefix=P1), Action.DENY, tag="a"),
                Clause(Match(prefix=P2), Action.DENY, tag="b"),
            ]
        )
        assert route_map.remove_if(lambda c: c.tag == "a") == 1
        assert len(route_map) == 1
        assert route_map.apply(make_route(P1)) is not None
        assert route_map.apply(make_route(P2)) is None

    def test_copy_is_independent(self):
        original = RouteMap([Clause(Match(prefix=P1), Action.DENY)])
        clone = original.copy()
        clone.remove_if(lambda c: True)
        assert len(original) == 1 and len(clone) == 0

    def test_clauses_for_prefix(self):
        indexed = Clause(Match(prefix=P1), set_med=1)
        generic = Clause(Match(from_asn=3), set_med=2)
        other = Clause(Match(prefix=P2), set_med=3)
        route_map = RouteMap([indexed, generic, other])
        relevant = list(route_map.clauses_for_prefix(P1))
        assert indexed in relevant and generic in relevant and other not in relevant

    def test_bool_reflects_effectiveness(self):
        assert not RouteMap()
        assert RouteMap(default_action=Action.DENY)
        assert RouteMap([Clause(Match(), set_med=1)])


class TestPathRegex:
    def test_anchored_head_and_origin(self):
        route = make_route(as_path=(3356, 1239, 701))
        assert Match(path_regex=r"^3356 .* 701$").matches(route)
        assert not Match(path_regex=r"^701").matches(route)

    def test_substring_match(self):
        route = make_route(as_path=(10, 20, 30))
        assert Match(path_regex=r"\b20\b").matches(route)
        assert not Match(path_regex=r"\b2\b").matches(route)

    def test_combines_with_other_conditions(self):
        route = make_route(as_path=(10, 20, 30), peer_asn=10)
        assert Match(path_regex=r"30$", from_asn=10).matches(route)
        assert not Match(path_regex=r"30$", from_asn=11).matches(route)

    def test_describe_mentions_regex(self):
        assert "path matches" in Match(path_regex="^1").describe()

    def test_cbgp_round_trip(self):
        import io

        from repro.bgp.network import Network
        from repro.cbgp import export_network, parse_script

        net = Network()
        a, b = net.add_router(1), net.add_router(2)
        net.connect(a, b)
        session = net.get_session(b, a)
        session.ensure_import_map().append(
            Clause(Match(path_regex="^2 .* 9$"), Action.DENY)
        )
        buffer = io.StringIO()
        export_network(net, buffer)
        clone = parse_script(io.StringIO(buffer.getvalue()))
        r_a = clone.as_routers(1)[0]
        r_b = clone.as_routers(2)[0]
        clause = next(clone.get_session(r_b, r_a).import_map.clauses())
        assert clause.match.path_regex == "^2 .* 9$"


class TestSubsumes:
    def test_empty_match_subsumes_everything(self):
        assert Match().subsumes(Match(prefix=P1, path_len_lt=3, from_asn=5))
        assert not Match(prefix=P1).subsumes(Match())

    def test_prefix_must_agree(self):
        assert Match(prefix=P1).subsumes(Match(prefix=P1, path_len_lt=3))
        assert not Match(prefix=P1).subsumes(Match(prefix=P2))
        assert not Match(prefix=P1).subsumes(Match(path_len_lt=3))

    def test_wider_length_bound_subsumes_narrower(self):
        assert Match(path_len_lt=5).subsumes(Match(path_len_lt=3))
        assert not Match(path_len_lt=3).subsumes(Match(path_len_lt=5))
        assert Match(path_len_gt=2).subsumes(Match(path_len_gt=4))
        assert not Match(path_len_gt=4).subsumes(Match(path_len_gt=2))

    def test_unsatisfiable_other_is_always_subsumed(self):
        impossible = Match(path_len_lt=2, path_len_gt=3)
        assert Match(prefix=P1, from_asn=9).subsumes(impossible)

    def test_from_router_implies_its_asn(self):
        # Router ids encode the ASN in the high 16 bits (Section 4.5).
        router_of_as5 = (5 << 16) | 1
        assert Match(from_asn=5).subsumes(Match(from_router=router_of_as5))
        assert not Match(from_asn=6).subsumes(Match(from_router=router_of_as5))

    def test_regexes_only_subsume_when_equal(self):
        assert Match(path_regex="^2 ").subsumes(Match(path_regex="^2 "))
        # ".*" trivially matches more, but the check is conservative.
        assert not Match(path_regex=".*").subsumes(Match(path_regex="^2 "))

    def test_subsumption_implies_match_containment(self):
        # Spot-check the semantic contract on concrete routes.
        wide = Match(prefix=P1, path_len_lt=5)
        narrow = Match(prefix=P1, path_len_lt=3, from_asn=1)
        assert wide.subsumes(narrow)
        for path in ((1,), (1, 2), (1, 2, 3), (1, 2, 3, 4)):
            route = make_route(as_path=path)
            if narrow.matches(route):
                assert wide.matches(route)


class TestRegexCacheBound:
    def test_cache_never_exceeds_limit(self):
        from repro.bgp.policy import _REGEX_CACHE, _REGEX_CACHE_LIMIT

        route = make_route()
        for index in range(_REGEX_CACHE_LIMIT + 50):
            Match(path_regex=f"^{index} never$").matches(route)
        assert len(_REGEX_CACHE) <= _REGEX_CACHE_LIMIT

    def test_recently_used_pattern_survives_eviction(self):
        from repro.bgp.policy import _REGEX_CACHE, _REGEX_CACHE_LIMIT

        route = make_route()
        hot = "^1 2 3$"
        Match(path_regex=hot).matches(route)
        for index in range(_REGEX_CACHE_LIMIT - 1):
            Match(path_regex=f"^{index} cold$").matches(route)
            Match(path_regex=hot).matches(route)  # keep it recently used
        assert hot in _REGEX_CACHE
