"""Unit tests for repro.bgp.network and repro.bgp.router."""

import pytest

from repro.bgp.network import Network, build_clique
from repro.bgp.policy import Action, Clause, Match
from repro.bgp.router import (
    format_router_id,
    make_router_id,
    router_id_asn,
    router_id_index,
)
from repro.errors import TopologyError
from repro.net.prefix import Prefix

PREFIX = Prefix("10.0.0.0/24")


class TestRouterIds:
    def test_encoding(self):
        rid = make_router_id(3356, 2)
        assert router_id_asn(rid) == 3356
        assert router_id_index(rid) == 2

    def test_formats_as_ip_for_16bit_asn(self):
        assert format_router_id(make_router_id(3356, 1)) == "13.28.0.1"

    def test_rejects_bad_index(self):
        with pytest.raises(ValueError):
            make_router_id(1, 0)
        with pytest.raises(ValueError):
            make_router_id(1, 1 << 16)


class TestTopologyConstruction:
    def test_add_router_assigns_sequential_ids(self):
        net = Network()
        r1 = net.add_router(7)
        r2 = net.add_router(7)
        assert r1.router_id == make_router_id(7, 1)
        assert r2.router_id == make_router_id(7, 2)
        assert net.as_routers(7) == [r1, r2]

    def test_add_as_idempotent(self):
        net = Network()
        assert net.add_as(5) is net.add_as(5)

    def test_connect_creates_both_directions(self):
        net = Network()
        a, b = net.add_router(1), net.add_router(2)
        s_ab, s_ba = net.connect(a, b)
        assert s_ab.src is a and s_ab.dst is b
        assert s_ba.src is b and s_ba.dst is a
        assert net.get_session(a, b) is s_ab
        assert s_ab.is_ebgp and not s_ab.is_ibgp

    def test_duplicate_session_rejected(self):
        net = Network()
        a, b = net.add_router(1), net.add_router(2)
        net.connect(a, b)
        with pytest.raises(TopologyError):
            net.add_session(a, b)

    def test_self_session_rejected(self):
        net = Network()
        a = net.add_router(1)
        with pytest.raises(TopologyError):
            net.add_session(a, a)

    def test_disconnect_removes_both_directions(self):
        net = Network()
        a, b = net.add_router(1), net.add_router(2)
        net.connect(a, b)
        net.disconnect(a, b)
        assert net.get_session(a, b) is None
        assert net.get_session(b, a) is None
        assert not a.sessions_out and not b.sessions_in

    def test_ibgp_full_mesh(self):
        net = Network()
        routers = [net.add_router(9) for _ in range(3)]
        net.ibgp_full_mesh(9)
        sessions = [s for s in net.sessions.values() if s.is_ibgp]
        assert len(sessions) == 6  # 3 pairs x 2 directions
        assert all(s.src.asn == 9 and s.dst.asn == 9 for s in sessions)
        assert routers[0].sessions_out and routers[0].sessions_in

    def test_originate_registers(self):
        net = Network()
        r = net.add_router(1)
        net.originate(r, PREFIX)
        assert net.originators(PREFIX) == [r.router_id]
        assert PREFIX in r.local_routes

    def test_double_origination_rejected(self):
        net = Network()
        r = net.add_router(1)
        net.originate(r, PREFIX)
        with pytest.raises(TopologyError):
            net.originate(r, PREFIX)

    def test_validate_passes_on_consistent_network(self):
        net = Network()
        a, b = net.add_router(1), net.add_router(2)
        net.connect(a, b)
        net.originate(a, PREFIX)
        net.validate()

    def test_build_clique_helper(self):
        net = Network()
        build_clique(net, [1, 2, 3])
        assert len(net.as_adjacencies()) == 3


class TestDuplicateRouter:
    def make_net(self):
        net = Network()
        center = net.add_router(5)
        left = net.add_router(1)
        right = net.add_router(2)
        net.connect(left, center)
        net.connect(center, right)
        session = net.get_session(left, center)
        session.ensure_export_map().append(
            Clause(Match(prefix=PREFIX), Action.DENY, tag="x")
        )
        net.originate(center, PREFIX)
        return net, center, left, right

    def test_clone_gets_same_neighbors(self):
        net, center, left, right = self.make_net()
        clone = net.duplicate_router(center)
        assert clone.asn == 5 and clone.router_id != center.router_id
        assert net.get_session(left, clone) is not None
        assert net.get_session(clone, right) is not None

    def test_clone_policies_are_copies(self):
        net, center, left, right = self.make_net()
        clone = net.duplicate_router(center)
        cloned_session = net.get_session(left, clone)
        assert cloned_session.export_map is not None
        assert len(cloned_session.export_map) == 1
        cloned_session.export_map.remove_if(lambda c: True)
        original_session = net.get_session(left, center)
        assert len(original_session.export_map) == 1

    def test_clone_originates_same_prefixes(self):
        net, center, _, _ = self.make_net()
        clone = net.duplicate_router(center)
        assert clone.router_id in net.originators(PREFIX)

    def test_clone_skips_ibgp_sessions(self):
        net, center, _, _ = self.make_net()
        sibling = net.add_router(5)
        net.connect(center, sibling)
        clone = net.duplicate_router(center)
        assert net.get_session(clone, sibling) is None
        assert net.get_session(sibling, clone) is None


class TestBookkeeping:
    def test_clear_prefix_only_touches_tracked_routers(self):
        net = Network()
        a, b = net.add_router(1), net.add_router(2)
        net.connect(a, b)
        net.originate(a, PREFIX)
        from repro.bgp.engine import simulate

        simulate(net)
        assert b.best(PREFIX) is not None
        net.clear_prefix(PREFIX)
        assert b.best(PREFIX) is None
        assert not b.adj_rib_in.get(PREFIX)

    def test_stats_counts(self):
        net = Network()
        a, b = net.add_router(1), net.add_router(2)
        net.connect(a, b)
        net.originate(a, PREFIX)
        stats = net.stats()
        assert stats == {
            "ases": 2,
            "routers": 2,
            "sessions": 2,
            "ebgp_sessions": 2,
            "prefixes": 1,
        }

    def test_as_adjacencies(self):
        net = Network()
        a, b, c = net.add_router(1), net.add_router(2), net.add_router(3)
        net.connect(a, b)
        net.connect(b, c)
        assert net.as_adjacencies() == {(1, 2), (2, 3)}
