"""Kill/resume round-trip tests for refinement checkpointing."""

import io
import json

import pytest

from repro.cbgp import export_model
from repro.core.build import build_initial_model
from repro.core.predict import evaluate_model
from repro.core.refine import RefinementConfig, Refiner
from repro.errors import CheckpointError
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.resilience.checkpoint import (
    CHECKPOINT_FORMAT,
    load_checkpoint,
    save_checkpoint,
)
from repro.topology.dataset import ObservedRoute, PathDataset

P = Prefix("10.0.0.0/24")


def dataset_from_paths(*paths):
    ds = PathDataset()
    for index, path in enumerate(paths):
        ds.add(ObservedRoute(f"p{index}", path[0], P, ASPath(path)))
    return ds


def exported(model) -> str:
    buffer = io.StringIO()
    export_model(model, buffer)
    return buffer.getvalue()


class TestCheckpointFile:
    def test_save_load_round_trip(self, tmp_path):
        ds = dataset_from_paths((1, 2, 4), (1, 3, 4))
        model = build_initial_model(ds)
        path = tmp_path / "refine.ckpt"
        save_checkpoint(path, model.network, 3, 17, 1, [])
        saved = load_checkpoint(path)
        assert saved.iteration == 3
        assert saved.best_matched == 17
        assert saved.stale_iterations == 1
        restored = saved.restore_model()
        assert restored.network.stats() == model.network.stats()
        assert restored.prefix_by_origin == model.prefix_by_origin

    def test_atomic_write_leaves_no_tmp_file(self, tmp_path):
        ds = dataset_from_paths((1, 2, 4))
        model = build_initial_model(ds)
        path = tmp_path / "refine.ckpt"
        save_checkpoint(path, model.network, 1, 0, 0, [])
        save_checkpoint(path, model.network, 2, 0, 0, [])  # overwrite in place
        assert path.exists()
        assert not (tmp_path / "refine.ckpt.tmp").exists()
        assert load_checkpoint(path).iteration == 2

    def test_corrupt_json_raises_checkpoint_error(self, tmp_path):
        path = tmp_path / "bad.ckpt"
        path.write_text("{not json")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_wrong_format_raises(self, tmp_path):
        path = tmp_path / "bad.ckpt"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path / "absent.ckpt")

    def test_format_marker_written(self, tmp_path):
        ds = dataset_from_paths((1, 2, 4))
        model = build_initial_model(ds)
        path = tmp_path / "refine.ckpt"
        save_checkpoint(path, model.network, 1, 0, 0, [])
        assert json.loads(path.read_text())["format"] == CHECKPOINT_FORMAT


class TestKillResumeRoundTrip:
    def make_training(self):
        return dataset_from_paths(
            (1, 2, 4), (1, 3, 4), (2, 4), (3, 4), (2, 1, 3, 4), (3, 1, 2, 4)
        )

    def test_resume_reaches_same_model_as_uninterrupted_run(self, tmp_path):
        training = self.make_training()

        # Reference: one uninterrupted run.
        reference = build_initial_model(training)
        ref_result = Refiner(reference, training).run()

        # "Crashed" run: checkpoint every iteration, kill after 1 iteration
        # (max_iterations=1 stands in for the process dying there).
        path = tmp_path / "refine.ckpt"
        killed = build_initial_model(training)
        Refiner(
            killed, training, RefinementConfig(max_iterations=1, checkpoint_every=1)
        ).run(checkpoint=path)
        assert path.exists()

        # Resume with a *fresh* refiner from the same initial conditions.
        resumed_model = build_initial_model(training)
        refiner = Refiner(resumed_model, training)
        resumed = refiner.run(checkpoint=path)

        assert resumed.converged == ref_result.converged
        assert resumed.iteration_count == ref_result.iteration_count
        # the resumed model is the checkpointed one, not the constructor's
        assert resumed.model is not resumed_model
        assert resumed.model.network.stats() == reference.network.stats()
        assert exported(resumed.model) == exported(reference)
        assert (
            evaluate_model(resumed.model, training).counts
            == evaluate_model(reference, training).counts
        )

    def test_resume_after_convergence_is_a_noop(self, tmp_path):
        training = self.make_training()
        path = tmp_path / "refine.ckpt"
        model = build_initial_model(training)
        first = Refiner(
            model, training, RefinementConfig(checkpoint_every=1)
        ).run(checkpoint=path)
        assert first.converged

        again = Refiner(build_initial_model(training), training).run(checkpoint=path)
        assert again.converged
        assert again.iteration_count == first.iteration_count
        assert exported(again.model) == exported(first.model)

    def test_fresh_run_writes_checkpoint_at_stop(self, tmp_path):
        training = self.make_training()
        path = tmp_path / "refine.ckpt"
        model = build_initial_model(training)
        result = Refiner(
            model, training, RefinementConfig(checkpoint_every=50)
        ).run(checkpoint=path)
        # checkpoint_every larger than the run length: still saved at stop
        assert path.exists()
        assert load_checkpoint(path).iteration == result.iteration_count

    def test_checkpoint_for_other_dataset_rejected(self, tmp_path):
        training = self.make_training()
        path = tmp_path / "refine.ckpt"
        model = build_initial_model(training)
        Refiner(
            model, training, RefinementConfig(checkpoint_every=1, max_iterations=1)
        ).run(checkpoint=path)

        other = dataset_from_paths((7, 8, 9), (8, 9))
        refiner = Refiner(build_initial_model(other), other)
        with pytest.raises(CheckpointError):
            refiner.run(checkpoint=path)

    def test_same_origins_different_paths_rejected(self, tmp_path):
        """The fingerprint catches what the origin-presence check cannot."""
        training = self.make_training()
        path = tmp_path / "refine.ckpt"
        Refiner(
            build_initial_model(training),
            training,
            RefinementConfig(checkpoint_every=1, max_iterations=1),
        ).run(checkpoint=path)

        # same origin AS (4), different observed paths
        other = dataset_from_paths((2, 4), (3, 4))
        refiner = Refiner(build_initial_model(other), other)
        with pytest.raises(CheckpointError, match="fingerprint"):
            refiner.run(checkpoint=path)

    def test_mini_pipeline_kill_resume(self, mini_pipeline):
        """Kill/resume equivalence on the synthetic mini end-to-end dataset."""
        import tempfile
        from pathlib import Path

        from repro.core.split import split_by_observation_points

        pruned = mini_pipeline["pruned"]
        training, _ = split_by_observation_points(pruned.dataset, 0.5, seed=5)

        reference = build_initial_model(pruned.dataset, pruned.graph.copy())
        ref_result = Refiner(reference, training).run()

        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "mini.ckpt"
            killed = build_initial_model(pruned.dataset, pruned.graph.copy())
            Refiner(
                killed, training,
                RefinementConfig(max_iterations=2, checkpoint_every=1),
            ).run(checkpoint=path)

            resumed = Refiner(
                build_initial_model(pruned.dataset, pruned.graph.copy()), training
            ).run(checkpoint=path)

        assert resumed.converged == ref_result.converged
        assert resumed.iteration_count == ref_result.iteration_count
        assert resumed.model.network.stats() == reference.network.stats()
        assert (
            evaluate_model(resumed.model, training).counts
            == evaluate_model(reference, training).counts
        )
