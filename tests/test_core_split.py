"""Unit tests for training/validation splitting."""

import pytest

from repro.core.split import split_by_observation_points, split_by_origin
from repro.errors import DatasetError
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.topology.dataset import ObservedRoute, PathDataset

P = Prefix("10.0.0.0/24")


def build_dataset(n_points=6, n_origins=5):
    ds = PathDataset()
    for point in range(n_points):
        observer = 100 + point
        for origin in range(n_origins):
            ds.add(
                ObservedRoute(
                    f"op{point}", observer, P, ASPath((observer, 50, 200 + origin))
                )
            )
    return ds


class TestSplitByObservationPoints:
    def test_partitions_points(self):
        ds = build_dataset()
        train, val = split_by_observation_points(ds, 0.5, seed=1)
        train_points = set(train.observation_points())
        val_points = set(val.observation_points())
        assert train_points | val_points == set(ds.observation_points())
        assert not train_points & val_points

    def test_routes_follow_their_point(self):
        ds = build_dataset()
        train, val = split_by_observation_points(ds, 0.5, seed=1)
        assert len(train) + len(val) == len(ds)

    def test_fraction_respected(self):
        ds = build_dataset(n_points=10)
        train, _ = split_by_observation_points(ds, 0.3, seed=2)
        assert len(train.observation_points()) == 3

    def test_both_sides_non_empty_at_extremes(self):
        ds = build_dataset(n_points=3)
        train, val = split_by_observation_points(ds, 0.01, seed=0)
        assert train.observation_points() and val.observation_points()
        train, val = split_by_observation_points(ds, 0.99, seed=0)
        assert train.observation_points() and val.observation_points()

    def test_deterministic_in_seed(self):
        ds = build_dataset()
        a_train, _ = split_by_observation_points(ds, 0.5, seed=7)
        b_train, _ = split_by_observation_points(ds, 0.5, seed=7)
        assert set(a_train.observation_points()) == set(b_train.observation_points())

    def test_different_seeds_differ(self):
        ds = build_dataset(n_points=10)
        splits = {
            frozenset(split_by_observation_points(ds, 0.5, seed=s)[0].observation_points())
            for s in range(5)
        }
        assert len(splits) > 1

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            split_by_observation_points(build_dataset(), 0.0)
        with pytest.raises(ValueError):
            split_by_observation_points(build_dataset(), 1.0)

    def test_rejects_single_point(self):
        ds = build_dataset(n_points=1)
        with pytest.raises(DatasetError):
            split_by_observation_points(ds, 0.5)


class TestSplitByOrigin:
    def test_partitions_origins(self):
        ds = build_dataset()
        train, val = split_by_origin(ds, 0.5, seed=1)
        assert not train.origin_asns() & val.origin_asns()
        assert train.origin_asns() | val.origin_asns() == ds.origin_asns()

    def test_all_routes_kept(self):
        ds = build_dataset()
        train, val = split_by_origin(ds, 0.5, seed=1)
        assert len(train) + len(val) == len(ds)

    def test_rejects_single_origin(self):
        ds = build_dataset(n_origins=1)
        with pytest.raises(DatasetError):
            split_by_origin(ds, 0.5)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            split_by_origin(build_dataset(), -0.1)
