"""Unit and property tests for the prefix radix trie."""

from hypothesis import given
from hypothesis import strategies as st

from repro.net.ip import ip_from_string
from repro.net.prefix import Prefix
from repro.net.trie import PrefixTrie


def P(text: str) -> Prefix:
    return Prefix(text)


class TestBasics:
    def test_empty(self):
        trie = PrefixTrie()
        assert len(trie) == 0
        assert trie.longest_match(ip_from_string("1.2.3.4")) is None
        assert P("10.0.0.0/8") not in trie

    def test_insert_get_exact(self):
        trie = PrefixTrie()
        trie.insert(P("10.0.0.0/8"), "a")
        assert trie.get(P("10.0.0.0/8")) == "a"
        assert trie.get(P("10.0.0.0/9")) is None
        assert P("10.0.0.0/8") in trie
        assert len(trie) == 1

    def test_insert_replaces(self):
        trie = PrefixTrie()
        trie.insert(P("10.0.0.0/8"), "a")
        trie.insert(P("10.0.0.0/8"), "b")
        assert trie.get(P("10.0.0.0/8")) == "b"
        assert len(trie) == 1

    def test_remove(self):
        trie = PrefixTrie()
        trie.insert(P("10.0.0.0/8"), "a")
        assert trie.remove(P("10.0.0.0/8"))
        assert not trie.remove(P("10.0.0.0/8"))
        assert len(trie) == 0
        assert trie.get(P("10.0.0.0/8")) is None

    def test_default_route(self):
        trie = PrefixTrie()
        trie.insert(P("0.0.0.0/0"), "default")
        match = trie.longest_match(ip_from_string("200.1.2.3"))
        assert match == (P("0.0.0.0/0"), "default")


class TestLongestMatch:
    def build(self):
        trie = PrefixTrie()
        trie.insert(P("10.0.0.0/8"), 8)
        trie.insert(P("10.1.0.0/16"), 16)
        trie.insert(P("10.1.2.0/24"), 24)
        trie.insert(P("192.168.0.0/16"), 99)
        return trie

    def test_most_specific_wins(self):
        trie = self.build()
        assert trie.longest_match(ip_from_string("10.1.2.3"))[1] == 24
        assert trie.longest_match(ip_from_string("10.1.9.9"))[1] == 16
        assert trie.longest_match(ip_from_string("10.9.9.9"))[1] == 8

    def test_no_match_outside(self):
        trie = self.build()
        assert trie.longest_match(ip_from_string("11.0.0.1")) is None

    def test_prefix_target_requires_containment(self):
        trie = self.build()
        # a /12 inside 10/8 matches the /8, not the /16 below it
        assert trie.longest_match(P("10.0.0.0/12"))[1] == 8
        # an exact stored prefix matches itself
        assert trie.longest_match(P("10.1.0.0/16"))[1] == 16

    def test_covering_lists_all(self):
        trie = self.build()
        covers = list(trie.covering(ip_from_string("10.1.2.3")))
        assert [value for _, value in covers] == [8, 16, 24]

    def test_items_sorted(self):
        trie = self.build()
        entries = list(trie.items())
        assert entries == sorted(entries, key=lambda kv: kv[0])
        assert len(entries) == 4


prefix_strategy = st.builds(
    Prefix,
    st.integers(min_value=0, max_value=0xFFFFFFFF),
    st.integers(min_value=0, max_value=32),
)


class TestProperties:
    @given(st.dictionaries(prefix_strategy, st.integers(), max_size=30))
    def test_exact_semantics_match_dict(self, entries):
        trie = PrefixTrie()
        for prefix, value in entries.items():
            trie.insert(prefix, value)
        assert len(trie) == len(entries)
        for prefix, value in entries.items():
            assert trie.get(prefix) == value
        assert dict(trie.items()) == entries

    @given(
        st.dictionaries(prefix_strategy, st.integers(), max_size=30),
        st.integers(min_value=0, max_value=0xFFFFFFFF),
    )
    def test_longest_match_agrees_with_naive_scan(self, entries, address):
        trie = PrefixTrie()
        for prefix, value in entries.items():
            trie.insert(prefix, value)
        naive = None
        for prefix in entries:
            if prefix.contains(address):
                if naive is None or prefix.length > naive.length:
                    naive = prefix
        match = trie.longest_match(address)
        if naive is None:
            assert match is None
        else:
            assert match == (naive, entries[naive])

    @given(st.lists(prefix_strategy, max_size=20))
    def test_remove_restores_previous_state(self, prefixes):
        trie = PrefixTrie()
        for index, prefix in enumerate(prefixes):
            trie.insert(prefix, index)
        survivors = {}
        for index, prefix in enumerate(prefixes):
            survivors[prefix] = index  # last insert wins
        for prefix in list(survivors)[::2]:
            trie.remove(prefix)
            del survivors[prefix]
        assert dict(trie.items()) == survivors
