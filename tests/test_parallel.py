"""Tests for the supervised parallel executor: crash isolation, watchdogs,
poison classification, deterministic merge and graceful shutdown."""

import signal
import threading

import pytest

from repro.bgp.network import Network
from repro.core.model import MODEL_DECISION_CONFIG
from repro.errors import ShutdownRequested
from repro.net.prefix import Prefix
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.obs.trace import (
    EVENT_DRAIN,
    EVENT_POISON_PREFIX,
    EVENT_TASK_RESUBMIT,
    EVENT_TASK_TIMEOUT,
    EVENT_WORKER_DEATH,
    EVENT_WORKER_SPAWN,
    RecordingTracer,
    tracing,
)
from repro.parallel import (
    ParallelConfig,
    SupervisedPool,
    WorkerFaults,
    apply_prefix_state,
    capture_prefix_state,
    simulate_network_supervised,
)
from repro.resilience.retry import (
    CONVERGED,
    POISON,
    TIMEOUT,
    RetryPolicy,
    simulate_network_with_retry,
)

pytestmark = pytest.mark.timeout(120)


def star_network(prefix_count=8, spokes=4):
    """A hub AS originating several prefixes, observed by spoke ASes."""
    net = Network("star")
    hub = net.add_router(100)
    for index in range(spokes):
        net.connect(net.add_router(200 + index), hub)
    prefixes = []
    for index in range(prefix_count):
        prefix = Prefix(f"10.{index}.0.0/24")
        net.originate(hub, prefix)
        prefixes.append(prefix)
    return net, prefixes


def fresh_registry():
    registry = MetricsRegistry()
    set_registry(registry)
    return registry


class TestEquivalence:
    def test_parallel_matches_sequential(self):
        net_seq, prefixes = star_network()
        net_par, _ = star_network()
        seq = simulate_network_with_retry(net_seq, config=MODEL_DECISION_CONFIG)
        par = simulate_network_supervised(
            net_par, config=MODEL_DECISION_CONFIG,
            parallel=ParallelConfig(workers=2),
        )
        assert [(str(o.prefix), o.status) for o in par.outcomes] == sorted(
            (str(o.prefix), o.status) for o in seq.outcomes
        )
        assert par.engine.messages == seq.engine.messages
        for router_id, router in net_seq.routers.items():
            other = net_par.routers[router_id]
            assert set(router.loc_rib) == set(other.loc_rib)
            for prefix in router.loc_rib:
                mine, theirs = router.loc_rib[prefix], other.loc_rib[prefix]
                assert mine.as_path == theirs.as_path
                assert mine.next_hop == theirs.next_hop

    def test_workers_1_falls_back_to_sequential(self):
        net, _ = star_network(prefix_count=3)
        stats = simulate_network_supervised(
            net, config=MODEL_DECISION_CONFIG, parallel=ParallelConfig(workers=1)
        )
        assert all(o.status == CONVERGED for o in stats.outcomes)
        assert stats.supervision is None  # no pool ran

    def test_pool_rejects_single_worker(self):
        net, _ = star_network(prefix_count=1)
        with pytest.raises(ValueError, match="workers >= 2"):
            SupervisedPool(net, parallel=ParallelConfig(workers=1))

    def test_merged_metrics_match_sequential(self):
        net_seq, _ = star_network()
        registry = fresh_registry()
        simulate_network_with_retry(net_seq, config=MODEL_DECISION_CONFIG)
        seq_messages = registry.snapshot()["histograms"][
            "engine.messages_per_prefix"
        ]
        net_par, _ = star_network()
        registry = fresh_registry()
        simulate_network_supervised(
            net_par, config=MODEL_DECISION_CONFIG,
            parallel=ParallelConfig(workers=2),
        )
        par_messages = registry.snapshot()["histograms"][
            "engine.messages_per_prefix"
        ]
        set_registry(None)
        assert par_messages == seq_messages


class TestCrashIsolation:
    def test_crash_prefix_classified_poison(self):
        net, prefixes = star_network()
        victim = str(prefixes[3])
        registry = fresh_registry()
        with tracing(RecordingTracer()) as tracer:
            stats = simulate_network_supervised(
                net, config=MODEL_DECISION_CONFIG,
                parallel=ParallelConfig(
                    workers=2, max_resubmits=1,
                    faults=WorkerFaults(crash_prefixes=(victim,)),
                ),
            )
        set_registry(None)
        assert [str(p) for p in stats.poison] == [victim]
        outcome = next(o for o in stats.outcomes if str(o.prefix) == victim)
        assert outcome.status == POISON
        assert outcome.resubmits == 1
        assert outcome.attempts == 2  # initial dispatch + one resubmit
        # every healthy prefix still converged
        healthy = [o for o in stats.outcomes if str(o.prefix) != victim]
        assert all(o.status == CONVERGED for o in healthy)
        # the poison prefix carries no routes (quarantined)
        assert not net.touched_routers(prefixes[3])
        assert stats.supervision["deaths"] == 2
        assert stats.supervision["restarts"] == 2
        assert stats.supervision["resubmits"] == 1
        counters = registry.snapshot()["counters"]
        assert counters["parallel.poison_prefixes"] == 1
        assert counters["parallel.resubmits"] == 1
        events = {record["type"] for record in tracer.events()}
        assert {
            EVENT_WORKER_SPAWN,
            EVENT_WORKER_DEATH,
            EVENT_TASK_RESUBMIT,
            EVENT_POISON_PREFIX,
        } <= events

    def test_hang_prefix_classified_timeout(self):
        net, prefixes = star_network()
        victim = str(prefixes[5])
        registry = fresh_registry()
        with tracing(RecordingTracer()) as tracer:
            stats = simulate_network_supervised(
                net, config=MODEL_DECISION_CONFIG,
                parallel=ParallelConfig(
                    workers=2, task_timeout=0.5, max_resubmits=1,
                    faults=WorkerFaults(
                        hang_prefixes=(victim,), hang_seconds=60.0
                    ),
                ),
            )
        set_registry(None)
        assert [str(p) for p in stats.timed_out] == [victim]
        outcome = next(o for o in stats.outcomes if str(o.prefix) == victim)
        assert outcome.status == TIMEOUT
        assert stats.supervision["task_timeouts"] == 2
        assert registry.snapshot()["counters"]["parallel.task_timeouts"] == 2
        events = {record["type"] for record in tracer.events()}
        assert EVENT_TASK_TIMEOUT in events

    def test_resubmit_succeeds_on_fresh_worker_after_one_crash(self):
        # A prefix that crashes its first worker but survives the retry
        # cannot be built with WorkerFaults (faults are deterministic by
        # prefix), so assert the opposite invariant instead: with a
        # generous resubmit allowance the poison classification still
        # triggers only after max_resubmits + 1 dispatches.
        net, prefixes = star_network(prefix_count=4)
        victim = str(prefixes[0])
        stats = simulate_network_supervised(
            net, config=MODEL_DECISION_CONFIG,
            parallel=ParallelConfig(
                workers=2, max_resubmits=3,
                faults=WorkerFaults(crash_prefixes=(victim,)),
            ),
        )
        outcome = next(o for o in stats.outcomes if str(o.prefix) == victim)
        assert outcome.status == POISON
        assert outcome.attempts == 4
        assert stats.supervision["deaths"] == 4

    def test_mixed_faults_whole_run_survives(self):
        net, prefixes = star_network(prefix_count=10)
        crash, hang = str(prefixes[1]), str(prefixes[8])
        stats = simulate_network_supervised(
            net, config=MODEL_DECISION_CONFIG,
            parallel=ParallelConfig(
                workers=3, task_timeout=0.5, max_resubmits=1,
                faults=WorkerFaults(
                    crash_prefixes=(crash,), hang_prefixes=(hang,),
                    hang_seconds=60.0,
                ),
            ),
        )
        assert [str(p) for p in stats.poison] == [crash]
        assert [str(p) for p in stats.timed_out] == [hang]
        assert sum(1 for o in stats.outcomes if o.status == CONVERGED) == 8


class TestGracefulShutdown:
    def test_sigterm_drains_and_raises(self):
        net, prefixes = star_network(prefix_count=12)
        victim = str(prefixes[0])
        timer = threading.Timer(
            0.5, lambda: signal.raise_signal(signal.SIGTERM)
        )
        timer.start()
        with tracing(RecordingTracer()) as tracer:
            try:
                with pytest.raises(ShutdownRequested) as excinfo:
                    simulate_network_supervised(
                        net, config=MODEL_DECISION_CONFIG,
                        parallel=ParallelConfig(
                            workers=2, drain_grace=1.0,
                            faults=WorkerFaults(
                                hang_prefixes=(victim,), hang_seconds=60.0
                            ),
                        ),
                    )
            finally:
                timer.cancel()
        shutdown = excinfo.value
        assert shutdown.signum == signal.SIGTERM
        assert shutdown.stats is not None
        assert shutdown.stats.supervision["drained"] is True
        # partial results + pending cover every prefix except the hung one
        done = {str(o.prefix) for o in shutdown.stats.outcomes}
        left = {str(p) for p in shutdown.pending}
        assert victim not in done
        assert done | left | {victim} == {str(p) for p in prefixes}
        events = {record["type"] for record in tracer.events()}
        assert EVENT_DRAIN in events

    def test_signal_handlers_restored_after_run(self):
        before = (
            signal.getsignal(signal.SIGINT),
            signal.getsignal(signal.SIGTERM),
        )
        net, _ = star_network(prefix_count=3)
        simulate_network_supervised(
            net, config=MODEL_DECISION_CONFIG, parallel=ParallelConfig(workers=2)
        )
        assert (
            signal.getsignal(signal.SIGINT),
            signal.getsignal(signal.SIGTERM),
        ) == before


class TestPrefixState:
    def test_capture_apply_round_trip(self):
        net, prefixes = star_network(prefix_count=2)
        simulate_network_with_retry(net, config=MODEL_DECISION_CONFIG)
        target = prefixes[0]
        state = capture_prefix_state(net, target)
        assert state.routers  # someone touched it
        blank, _ = star_network(prefix_count=2)
        apply_prefix_state(blank, state)
        assert blank.touched_routers(target) == net.touched_routers(target)
        for router_id in net.touched_routers(target):
            mine = net.routers[router_id].loc_rib.get(target)
            theirs = blank.routers[router_id].loc_rib.get(target)
            assert (mine is None) == (theirs is None)
            if mine is not None:
                assert mine.as_path == theirs.as_path

    def test_apply_clears_stale_state_first(self):
        net, prefixes = star_network(prefix_count=1)
        simulate_network_with_retry(net, config=MODEL_DECISION_CONFIG)
        state = capture_prefix_state(net, prefixes[0])
        # re-applying over existing state must not duplicate anything
        apply_prefix_state(net, state)
        apply_prefix_state(net, state)
        touched = net.touched_routers(prefixes[0])
        assert state.routers.keys() == set(touched)


class TestRetryPolicyClamp:
    def test_next_budget_clamps_to_documented_ceiling(self):
        from repro.resilience.retry import MAX_BUDGET

        policy = RetryPolicy(budget_cap=10 * MAX_BUDGET, budget_growth=1000.0)
        assert policy.effective_cap == MAX_BUDGET
        budget = 1_000_000
        for _ in range(10):
            budget = policy.next_budget(budget)
        assert budget == MAX_BUDGET

    def test_configured_cap_below_ceiling_still_wins(self):
        policy = RetryPolicy(budget_cap=5_000)
        assert policy.next_budget(4_000) == 5_000
        assert policy.first_budget(Network("empty")) <= 5_000


class TestDeterministicSerialization:
    def test_stats_to_dict_sorted_regardless_of_outcome_order(self):
        from repro.resilience.retry import PrefixOutcome, ResilienceStats

        prefixes = [Prefix(f"10.{i}.0.0/24") for i in (3, 1, 2)]
        stats_a = ResilienceStats()
        stats_b = ResilienceStats()
        for prefix in prefixes:
            stats_a.outcomes.append(
                PrefixOutcome.supervised_failure(prefix, POISON, 2, 0.0)
            )
        for prefix in reversed(prefixes):
            stats_b.outcomes.append(
                PrefixOutcome.supervised_failure(prefix, POISON, 2, 0.0)
            )
        assert stats_a.to_dict() == stats_b.to_dict()
        assert stats_a.to_dict()["poison"] == sorted(str(p) for p in prefixes)
        assert stats_a.to_dict()["resubmits"] == 6

    def test_health_exit_codes_for_poison_and_interrupted(self):
        from repro.resilience.health import (
            EXIT_DIVERGED,
            EXIT_INTERRUPTED,
            RunHealth,
        )
        from repro.resilience.retry import PrefixOutcome, ResilienceStats

        health = RunHealth()
        stats = ResilienceStats()
        stats.outcomes.append(
            PrefixOutcome.supervised_failure(Prefix("10.0.0.0/24"), POISON, 2, 0.0)
        )
        health.record_simulation(stats)
        assert health.diverged_prefixes == ["10.0.0.0/24"]
        assert health.exit_code == EXIT_DIVERGED
        health.interrupted = True
        assert health.exit_code == EXIT_INTERRUPTED
        assert health.to_dict()["interrupted"] is True
