"""Tests for static report diffing and ``repro lint --diff``."""

import json

import pytest

from repro.analysis import diff_reports
from repro.analysis.findings import AnalysisReport, Finding, Severity
from repro.cli import main
from repro.core.build import build_initial_model
from repro.data.synthesis import prefix_for_asn
from repro.net.aspath import ASPath
from repro.resilience.faults import inject_dispute_wheel
from repro.topology.dataset import ObservedRoute, PathDataset


def report_of(*findings):
    report = AnalysisReport()
    report.extend(findings, "test")
    return report


def finding(rule="r", severity=Severity.WARNING, message="m"):
    return Finding(rule=rule, severity=severity, message=message)


class TestDiffReports:
    def test_identical_reports_are_all_unchanged(self):
        a = report_of(finding(), finding(rule="s"))
        b = report_of(finding(rule="s"), finding())
        diff = diff_reports(a, b)
        assert diff.counts() == {"new": 0, "resolved": 0, "unchanged": 2}
        assert diff.exit_code == 0

    def test_new_and_resolved_are_separated(self):
        base = report_of(finding(rule="old"))
        current = report_of(finding(rule="new", severity=Severity.ERROR))
        diff = diff_reports(base, current)
        assert [f.rule for f in diff.new] == ["new"]
        assert [f.rule for f in diff.resolved] == ["old"]
        assert diff.exit_code == 1

    def test_resolved_errors_alone_exit_zero(self):
        base = report_of(finding(severity=Severity.ERROR))
        diff = diff_reports(base, report_of())
        assert diff.counts() == {"new": 0, "resolved": 1, "unchanged": 0}
        assert diff.exit_code == 0

    def test_multiset_semantics(self):
        base = report_of(finding(), finding())
        current = report_of(finding(), finding(), finding())
        diff = diff_reports(base, current)
        assert diff.counts() == {"new": 1, "resolved": 0, "unchanged": 2}
        reverse = diff_reports(current, base)
        assert reverse.counts() == {"new": 0, "resolved": 1, "unchanged": 2}

    def test_changed_clauses_show_as_resolved_plus_new(self):
        base = report_of(
            Finding(rule="r", severity=Severity.WARNING, message="m",
                    clauses=("a",))
        )
        current = report_of(
            Finding(rule="r", severity=Severity.WARNING, message="m",
                    clauses=("b",))
        )
        diff = diff_reports(base, current)
        assert diff.counts() == {"new": 1, "resolved": 1, "unchanged": 0}

    def test_render_and_json(self):
        base = report_of(finding(rule="gone"))
        current = report_of(finding(rule="fresh", severity=Severity.ERROR))
        diff = diff_reports(base, current)
        text = diff.render()
        assert any(line.startswith("+ ") for line in text.splitlines())
        assert any(line.startswith("- ") for line in text.splitlines())
        assert "diff: 1 new, 1 resolved, 0 unchanged" in text
        document = json.loads(diff.to_json())
        assert document["counts"] == diff.counts()
        assert document["exit_code"] == 1


@pytest.fixture(scope="module")
def models(tmp_path_factory):
    """Two saved model configs: clean, and with an injected dispute wheel."""
    directory = tmp_path_factory.mktemp("lintdiff")
    routes = [
        ObservedRoute("p9", 9, prefix_for_asn(4), ASPath(path))
        for path in ((9, 1, 4), (9, 2, 4), (9, 3, 4),
                     (9, 1, 2, 4), (9, 2, 3, 4), (9, 3, 1, 4))
    ]
    from repro.cbgp.export import export_network

    clean_model = build_initial_model(PathDataset(routes))
    clean = directory / "clean.cfg"
    with open(clean, "w", encoding="ascii") as handle:
        export_network(clean_model.network, handle)

    wheel_model = build_initial_model(PathDataset(routes))
    inject_dispute_wheel(
        wheel_model.network, wheel_model.canonical_prefix(4), (1, 2, 3)
    )
    wheel = directory / "wheel.cfg"
    with open(wheel, "w", encoding="ascii") as handle:
        export_network(wheel_model.network, handle)
    return clean, wheel


class TestLintDiffCli:
    def test_new_wheel_is_a_new_error_and_exits_one(self, models, capsys):
        clean, wheel = models
        code = main(["lint", str(wheel), "--diff", str(clean)])
        out = capsys.readouterr().out
        assert code == 1
        assert "+ error   safety-dispute-wheel" in out
        assert "0 resolved" in out

    def test_fixed_wheel_is_resolved_and_exits_zero(self, models, capsys):
        clean, wheel = models
        code = main(["lint", str(clean), "--diff", str(wheel)])
        out = capsys.readouterr().out
        assert code == 0
        assert "- error   safety-dispute-wheel" in out
        assert "0 new" in out

    def test_self_diff_is_empty(self, models, capsys):
        clean, _wheel = models
        code = main(["lint", str(clean), "--diff", str(clean)])
        out = capsys.readouterr().out
        assert code == 0
        assert "diff: 0 new, 0 resolved," in out

    def test_json_diff(self, models, capsys):
        clean, wheel = models
        code = main(["lint", str(wheel), "--diff", str(clean), "--json"])
        document = json.loads(capsys.readouterr().out)
        assert code == 1
        assert document["counts"]["new"] >= 1
        assert all(
            "rule" in entry and "severity" in entry
            for entry in document["new"]
        )

    def test_missing_base_exits_with_data_error(self, models, capsys):
        clean, _ = models
        code = main(["lint", str(clean), "--diff", "/nonexistent/base.cfg"])
        assert code == 4
        assert "error" in capsys.readouterr().err


class TestArtifactDiff:
    def test_artifact_vs_its_own_model_diffs_empty(self, models, tmp_path,
                                                   capsys):
        clean, _wheel = models
        artifact = tmp_path / "clean.artifact"
        assert main(["compile-artifact", str(clean),
                     "--out", str(artifact)]) == 0
        capsys.readouterr()
        code = main(["lint", str(clean), "--diff", str(artifact)])
        out = capsys.readouterr().out
        assert code == 0
        assert "diff: 0 new, 0 resolved," in out

    def test_wheel_model_vs_clean_artifact_reports_new_error(
        self, models, tmp_path, capsys
    ):
        clean, wheel = models
        artifact = tmp_path / "clean.artifact"
        assert main(["compile-artifact", str(clean),
                     "--out", str(artifact)]) == 0
        capsys.readouterr()
        code = main(["lint", str(wheel), "--diff", str(artifact)])
        out = capsys.readouterr().out
        assert code == 1
        assert "+ error   safety-dispute-wheel" in out

    def test_artifact_lint_uses_embedded_certificates(self, models, tmp_path,
                                                      capsys):
        _clean, wheel = models
        artifact = tmp_path / "wheel.artifact"
        # the wheel prefix is quarantined at compile time (exit 3), but its
        # certificate still records the static findings
        assert main(["compile-artifact", str(wheel),
                     "--out", str(artifact)]) == 3
        capsys.readouterr()
        code = main(["lint", str(artifact)])
        out = capsys.readouterr().out
        assert code == 1
        assert "safety-dispute-wheel" in out
