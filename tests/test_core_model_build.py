"""Unit tests for the AS-routing model object and initial-model builder."""

import pytest

from repro.core.build import build_initial_model
from repro.core.model import MODEL_DECISION_CONFIG
from repro.errors import TopologyError
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix, prefix_for_asn
from repro.topology.dataset import ObservedRoute, PathDataset
from repro.topology.graph import ASGraph

P = Prefix("10.0.0.0/24")


def dataset_from_paths(*paths):
    ds = PathDataset()
    for path in paths:
        ds.add(ObservedRoute(f"p{path[0]}", path[0], P, ASPath(path)))
    return ds


class TestBuildInitialModel:
    def test_one_quasi_router_per_as(self):
        model = build_initial_model(dataset_from_paths((1, 2, 3), (1, 4, 3)))
        for asn in (1, 2, 3, 4):
            assert len(model.quasi_routers(asn)) == 1

    def test_sessions_follow_graph_edges(self):
        model = build_initial_model(dataset_from_paths((1, 2, 3)))
        assert model.network.as_adjacencies() == {(1, 2), (2, 3)}

    def test_every_as_originates_canonical_prefix(self):
        model = build_initial_model(dataset_from_paths((1, 2, 3)))
        for asn in (1, 2, 3):
            prefix = model.canonical_prefix(asn)
            assert model.network.originators(prefix)
            assert model.origin_of(prefix) == asn

    def test_canonical_prefix_encodes_asn(self):
        model = build_initial_model(dataset_from_paths((1, 2)))
        assert model.canonical_prefix(2) == prefix_for_asn(2)

    def test_explicit_graph_overrides_dataset(self):
        graph = ASGraph.from_edges([(1, 2), (2, 3), (3, 4)])
        model = build_initial_model(dataset_from_paths((1, 2)), graph)
        assert 4 in model.network.ases

    def test_unknown_origin_raises(self):
        model = build_initial_model(dataset_from_paths((1, 2)))
        with pytest.raises(TopologyError):
            model.canonical_prefix(99)
        with pytest.raises(TopologyError):
            model.origin_of(P)


class TestModelSimulation:
    def test_model_decision_config(self):
        assert MODEL_DECISION_CONFIG.med_always_compare
        assert not MODEL_DECISION_CONFIG.use_igp_cost

    def test_simulate_all_fills_ribs(self):
        model = build_initial_model(dataset_from_paths((1, 2, 3)))
        model.simulate_all()
        prefix = model.canonical_prefix(3)
        best = model.quasi_routers(1)[0].best(prefix)
        assert best is not None and best.as_path == (2, 3)

    def test_simulate_origin_refreshes_one_prefix(self):
        model = build_initial_model(dataset_from_paths((1, 2, 3)))
        model.simulate_all()
        router_1 = model.quasi_routers(1)[0]
        router_2 = model.quasi_routers(2)[0]
        model.network.disconnect(router_1, router_2)
        model.graph.remove_edge(1, 2)
        model.simulate_origin(3)
        assert router_1.best(model.canonical_prefix(3)) is None

    def test_stats_and_counts(self):
        model = build_initial_model(dataset_from_paths((1, 2, 3)))
        stats = model.stats()
        assert stats["ases"] == 3
        assert stats["policy_clauses"] == 0
        assert model.quasi_router_counts() == {1: 1, 2: 1, 3: 1}

    def test_add_origin_idempotent(self):
        model = build_initial_model(dataset_from_paths((1, 2)))
        first = model.add_origin(1)
        second = model.add_origin(1)
        assert first == second
