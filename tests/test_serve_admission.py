"""Tests for overload protection: bounded admission, deadlines, and the
sliding-window circuit breaker."""

import threading

import pytest

from repro.obs.metrics import Gauge, get_registry, labelled
from repro.serve import AdmissionController, Rejection, Ticket


@pytest.fixture(autouse=True)
def clean_registry():
    get_registry().reset()
    yield
    get_registry().reset()


class TestBoundedAdmission:
    def test_admits_up_to_max_inflight(self):
        controller = AdmissionController(max_inflight=2)
        first = controller.admit("/paths")
        second = controller.admit("/paths")
        assert isinstance(first, Ticket) and isinstance(second, Ticket)
        assert controller.inflight == 2
        assert get_registry().gauge("serve.inflight").value == 2

    def test_sheds_the_excess_with_retry_after(self):
        controller = AdmissionController(max_inflight=1)
        controller.admit("/paths")
        rejection = controller.admit("/paths")
        assert isinstance(rejection, Rejection)
        assert rejection.reason == "overload"
        assert rejection.retry_after >= 1
        registry = get_registry()
        assert registry.counter("serve.shed").value == 1
        assert registry.counter(
            labelled("serve.shed", route="/paths", reason="overload")
        ).value == 1

    def test_release_frees_a_slot(self):
        controller = AdmissionController(max_inflight=1)
        ticket = controller.admit("/paths")
        assert isinstance(controller.admit("/paths"), Rejection)
        controller.release(ticket)
        assert controller.inflight == 0
        assert get_registry().gauge("serve.inflight").value == 0
        assert isinstance(controller.admit("/paths"), Ticket)

    def test_rejects_nonsense_limits(self):
        with pytest.raises(ValueError):
            AdmissionController(max_inflight=0)
        with pytest.raises(ValueError):
            AdmissionController(deadline_seconds=0)


class TestDeadlines:
    def test_ticket_tracks_remaining_budget(self):
        controller = AdmissionController(deadline_seconds=5.0)
        ticket = controller.admit("/paths")
        assert 0 < ticket.remaining <= 5.0

    def test_fast_release_records_positive_headroom(self):
        controller = AdmissionController(deadline_seconds=5.0)
        controller.release(controller.admit("/paths"))
        registry = get_registry()
        histogram = registry.histogram("serve.deadline_headroom_seconds")
        assert histogram.count == 1
        assert registry.counter("serve.deadline_exceeded").value == 0

    def test_blown_deadline_is_counted(self):
        controller = AdmissionController(deadline_seconds=5.0)
        ticket = controller.admit("/paths")
        # Rewind the start so the deadline has already passed.
        ticket.started -= 6.0
        assert ticket.remaining < 0
        controller.release(ticket)
        assert get_registry().counter("serve.deadline_exceeded").value == 1


class TestBreaker:
    def test_opens_on_the_most_expensive_route(self):
        controller = AdmissionController(
            max_inflight=1, breaker_threshold=3, breaker_cooloff=60.0
        )
        # Record costs: /paths is 10x dearer than /predict.
        cheap = controller.admit("/predict")
        controller.release(cheap)
        dear = controller.admit("/paths")
        dear.started -= 1.0  # looks like it took a second
        controller.release(dear)
        holder = controller.admit("/paths")  # occupy the only slot
        for _ in range(4):  # > threshold sheds inside the window
            assert isinstance(controller.admit("/predict"), Rejection)
        assert controller.describe()["breaker_open_route"] == "/paths"
        assert get_registry().counter("serve.breaker_opens").value == 1
        # The broken route is shed even though a slot is now free.
        controller.release(holder)
        rejection = controller.admit("/paths")
        assert isinstance(rejection, Rejection)
        assert rejection.reason == "breaker-open"
        assert rejection.retry_after >= 1
        # Cheap routes keep flowing.
        assert isinstance(controller.admit("/predict"), Ticket)

    def test_breaker_half_opens_after_cooloff(self):
        controller = AdmissionController(
            max_inflight=1, breaker_threshold=2, breaker_cooloff=30.0
        )
        spent = controller.admit("/paths")
        spent.started -= 1.0
        controller.release(spent)
        holder = controller.admit("/paths")
        for _ in range(3):
            controller.admit("/paths")
        controller.release(holder)
        assert controller.admit("/paths").reason == "breaker-open"
        # Rewind the cooloff clock: next admit should half-open.
        controller._broken_until = 0.0
        assert isinstance(controller.admit("/paths"), Ticket)
        assert controller.describe()["breaker_open_route"] is None

    def test_recent_sheds_appear_in_describe(self):
        controller = AdmissionController(max_inflight=1)
        controller.admit("/paths")
        controller.admit("/paths")
        described = controller.describe()
        assert described["recent_sheds"] == 1
        assert described["inflight"] == 1
        assert described["max_inflight"] == 1


class TestGauge:
    def test_add_is_thread_safe(self):
        gauge = Gauge(name="test.gauge")
        workers = [
            threading.Thread(
                target=lambda: [gauge.add(1) for _ in range(500)]
            )
            for _ in range(4)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert gauge.value == 2000

    def test_add_and_set_compose(self):
        gauge = Gauge(name="test.gauge")
        gauge.set(10)
        gauge.add(-3)
        assert gauge.value == 7


class TestConcurrentAdmission:
    def test_inflight_never_exceeds_the_bound(self):
        controller = AdmissionController(max_inflight=4)
        peak = []
        lock = threading.Lock()

        def worker():
            for _ in range(50):
                ticket = controller.admit("/paths")
                if isinstance(ticket, Ticket):
                    with lock:
                        peak.append(controller.inflight)
                    controller.release(ticket)

        workers = [threading.Thread(target=worker) for _ in range(8)]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()
        assert peak and max(peak) <= 4
        assert controller.inflight == 0
        assert get_registry().gauge("serve.inflight").value == 0
