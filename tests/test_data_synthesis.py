"""Unit tests for the synthetic-Internet generator."""

from repro.bgp import simulate
from repro.data.synthesis import (
    SyntheticConfig,
    synthesize_internet,
)
from repro.relationships.types import Relationship
from repro.topology.classify import Level

SMALL = SyntheticConfig(seed=9, n_level1=3, n_level2=5, n_other=8, n_stub=15)


class TestStructure:
    def test_population_counts(self):
        internet = synthesize_internet(SMALL)
        assert len(internet.level1_asns) == 3
        assert len(internet.level_asns(Level.LEVEL2)) == 5
        total = 3 + 5 + 8 + 15
        assert len(internet.network.ases) == total

    def test_tier1_clique_is_complete(self):
        internet = synthesize_internet(SMALL)
        adjacencies = internet.network.as_adjacencies()
        level1 = internet.level1_asns
        for i, a in enumerate(level1):
            for b in level1[i + 1 :]:
                assert (min(a, b), max(a, b)) in adjacencies
                assert internet.relationships.get(a, b) is Relationship.PEER

    def test_every_non_tier1_has_a_provider(self):
        internet = synthesize_internet(SMALL)
        level1 = set(internet.level1_asns)
        for asn in internet.network.ases:
            if asn in level1:
                continue
            providers = {
                b
                for a, b, rel in internet.relationships.edges()
                if a == asn and rel is Relationship.PROVIDER
            } | {
                a
                for a, b, rel in internet.relationships.edges()
                if b == asn and rel is Relationship.CUSTOMER
            }
            assert providers, f"AS {asn} has no provider"

    def test_igp_connected_per_as(self):
        internet = synthesize_internet(SMALL)
        for node in internet.network.ases.values():
            assert node.igp.is_connected()

    def test_ibgp_full_mesh_per_as(self):
        internet = synthesize_internet(SMALL)
        for node in internet.network.ases.values():
            routers = node.routers
            for i, a in enumerate(routers):
                for b in routers[i + 1 :]:
                    assert internet.network.get_session(a, b) is not None

    def test_prefixes_originated_at_all_routers(self):
        internet = synthesize_internet(SMALL)
        for asn, prefixes in internet.prefixes_by_as.items():
            routers = internet.network.as_routers(asn)
            for prefix in prefixes:
                assert set(internet.network.originators(prefix)) == {
                    r.router_id for r in routers
                }

    def test_origin_of(self):
        internet = synthesize_internet(SMALL)
        asn = internet.level1_asns[0]
        prefix = internet.prefixes_by_as[asn][0]
        assert internet.origin_of(prefix) == asn

    def test_deterministic_in_seed(self):
        a = synthesize_internet(SMALL)
        b = synthesize_internet(SMALL)
        assert a.network.stats() == b.network.stats()
        assert a.selective_origins == b.selective_origins

    def test_different_seeds_differ(self):
        import dataclasses

        other = dataclasses.replace(SMALL, seed=10)
        a = synthesize_internet(SMALL)
        b = synthesize_internet(other)
        assert a.network.stats() != b.network.stats() or (
            a.selective_origins != b.selective_origins
        )

    def test_scaled_config(self):
        scaled = SMALL.scaled(2.0)
        assert scaled.n_stub == 30
        assert scaled.n_level2 == 10
        assert scaled.seed == SMALL.seed


class TestGroundTruthBehaviour:
    def test_simulation_converges(self):
        internet = synthesize_internet(SMALL)
        stats = simulate(internet.network)
        assert stats.prefixes == len(internet.network.prefixes())
        assert not stats.diverged

    def test_weird_policies_recorded(self):
        internet = synthesize_internet(SMALL)
        assert internet.weird_sessions  # fraction > 0 at this size
        for session_id in internet.weird_sessions:
            assert session_id in internet.network.sessions

    def test_full_reachability_without_weird_policies(self):
        import dataclasses

        config = dataclasses.replace(
            SMALL,
            weird_session_fraction=0.0,
            selective_announce_fraction=0.0,
        )
        internet = synthesize_internet(config)
        simulate(internet.network)
        # every router reaches every prefix (no filters block origins)
        for prefix in internet.network.prefixes():
            for router in internet.network.routers.values():
                assert router.best(prefix) is not None, (
                    f"{router.name} cannot reach {prefix}"
                )

    def test_selective_announcement_blocks_somewhere(self):
        internet = synthesize_internet(SMALL)
        assert internet.selective_origins
        # a selective origin denies at least one prefix on some session
        asn = internet.selective_origins[0]
        denies = 0
        for router in internet.network.as_routers(asn):
            for session in router.sessions_out:
                if session.export_map is not None:
                    denies += sum(
                        1
                        for clause in session.export_map.clauses()
                        if clause.tag == "weird"
                    )
        assert denies > 0

    def test_prepending_origins_produce_padded_paths(self):
        internet = synthesize_internet(SMALL)
        simulate(internet.network)
        found_padding = False
        for asn in internet.prepending_origins:
            for prefix in internet.prefixes_by_as[asn]:
                for router in internet.network.routers.values():
                    best = router.best(prefix)
                    if best is None:
                        continue
                    path = best.as_path
                    if any(a == b for a, b in zip(path, path[1:])):
                        found_padding = True
        assert found_padding


class TestRouteReflection:
    def test_rr_internet_converges_and_routes(self):
        import dataclasses

        from repro.forwarding import traceroute

        config = dataclasses.replace(SMALL, route_reflection_threshold=3)
        internet = synthesize_internet(config)
        simulate(internet.network)
        # some AS actually uses reflection
        reflectors = [
            router
            for router in internet.network.routers.values()
            if router.rr_clients
        ]
        assert reflectors
        # reachability: sample prefixes are routed and forwardable
        net = internet.network
        delivered = 0
        for prefix in net.prefixes()[:10]:
            for router in list(net.routers.values())[:25]:
                if router.best(prefix) is None:
                    continue
                if traceroute(net, router, prefix).delivered:
                    delivered += 1
        assert delivered > 50
