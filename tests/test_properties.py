"""Property-based tests (hypothesis) for core data structures and invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.decision import DecisionConfig, Step, run_decision
from repro.bgp.igp import IGPTopology
from repro.bgp.policy import Action, Clause, Match, RouteMap
from repro.bgp.route import Route
from repro.net.aspath import ASPath
from repro.net.ip import ip_from_string, ip_to_string
from repro.net.prefix import Prefix

ips = st.integers(min_value=0, max_value=0xFFFFFFFF)
prefix_lengths = st.integers(min_value=0, max_value=32)
asns = st.integers(min_value=1, max_value=65535)
paths = st.lists(asns, min_size=0, max_size=8)


class TestIpProperties:
    @given(ips)
    def test_ip_round_trip(self, value):
        assert ip_from_string(ip_to_string(value)) == value

    @given(ips, prefix_lengths)
    def test_prefix_canonical_and_round_trip(self, network, length):
        prefix = Prefix(network, length)
        assert Prefix(str(prefix)) == prefix
        # canonical: no host bits below the mask
        assert prefix.network & ~prefix.netmask == 0

    @given(ips, st.integers(min_value=1, max_value=32))
    def test_supernet_contains_subnet(self, network, length):
        prefix = Prefix(network, length)
        assert prefix.supernet().contains(prefix)

    @given(ips, st.integers(min_value=0, max_value=31))
    def test_subnets_partition_parent(self, network, length):
        parent = Prefix(network, length)
        low, high = parent.subnets()
        assert low != high
        assert parent.contains(low) and parent.contains(high)
        assert not low.contains(high) and not high.contains(low)


class TestASPathProperties:
    @given(paths)
    def test_parse_str_round_trip(self, asn_list):
        path = ASPath(asn_list)
        assert ASPath.parse(str(path)) == path

    @given(paths)
    def test_without_prepending_idempotent(self, asn_list):
        path = ASPath(asn_list)
        once = path.without_prepending()
        assert once.without_prepending() == once

    @given(paths)
    def test_without_prepending_no_consecutive_dups(self, asn_list):
        collapsed = ASPath(asn_list).without_prepending().asns
        assert all(a != b for a, b in zip(collapsed, collapsed[1:]))

    @given(paths, asns)
    def test_prepend_then_suffix_recovers(self, asn_list, head):
        if head in asn_list:
            return
        path = ASPath(asn_list).prepended_by(head)
        assert path.suffix_from(head) == path

    @given(paths)
    def test_edges_connect_consecutive_distinct(self, asn_list):
        path = ASPath(asn_list)
        for a, b in path.edges():
            assert a != b


def route_strategy():
    return st.builds(
        Route,
        prefix=st.just(Prefix("10.0.0.0/24")),
        as_path=st.lists(asns, min_size=0, max_size=5).map(tuple),
        next_hop=st.integers(min_value=1, max_value=1 << 31),
        local_pref=st.integers(min_value=0, max_value=200),
        med=st.integers(min_value=0, max_value=100),
        peer_router=st.integers(min_value=1, max_value=1 << 31),
        peer_asn=asns,
    )


def distinct_peers(routes):
    """Enforce the engine invariant: one candidate per session, so
    peer_router values are unique within a candidate set."""
    return [
        route.replace(peer_router=(route.peer_router << 4) | index)
        for index, route in enumerate(routes)
    ]


class TestDecisionProperties:
    @given(st.lists(route_strategy(), min_size=1, max_size=8))
    def test_exactly_one_winner(self, routes):
        routes = distinct_peers(routes)
        outcome = run_decision(routes, DecisionConfig(med_always_compare=True))
        assert outcome.best in routes
        assert len(outcome.eliminated) == len(routes) - 1
        assert outcome.elimination_step(outcome.best) is None

    @given(st.lists(route_strategy(), min_size=1, max_size=8))
    def test_winner_is_pareto_optimal_on_first_steps(self, routes):
        outcome = run_decision(routes, DecisionConfig(med_always_compare=True))
        best = outcome.best
        top_lp = max(route.local_pref for route in routes)
        assert best.local_pref == top_lp
        contenders = [r for r in routes if r.local_pref == top_lp]
        assert len(best.as_path) == min(len(r.as_path) for r in contenders)

    @given(st.lists(route_strategy(), min_size=1, max_size=8))
    def test_order_independence(self, routes):
        routes = distinct_peers(routes)
        forward = run_decision(routes, DecisionConfig(med_always_compare=True))
        backward = run_decision(
            list(reversed(routes)), DecisionConfig(med_always_compare=True)
        )
        key = (
            forward.best.local_pref,
            forward.best.as_path,
            forward.best.med,
            forward.best.peer_router,
        )
        back_key = (
            backward.best.local_pref,
            backward.best.as_path,
            backward.best.med,
            backward.best.peer_router,
        )
        assert key == back_key

    @given(st.lists(route_strategy(), min_size=2, max_size=8))
    def test_eliminations_monotone_in_steps(self, routes):
        outcome = run_decision(routes, DecisionConfig(med_always_compare=True))
        # survivors_until is monotone decreasing in the step order
        previous = len(routes)
        for step in Step:
            alive = len(outcome.survivors_until(step))
            assert alive <= previous
            previous = alive


class TestRouteMapProperties:
    clause_strategy = st.builds(
        Clause,
        match=st.builds(
            Match,
            path_len_lt=st.one_of(st.none(), st.integers(1, 6)),
            from_asn=st.one_of(st.none(), asns),
        ),
        action=st.sampled_from([Action.PERMIT, Action.DENY]),
        set_local_pref=st.one_of(st.none(), st.integers(0, 200)),
        set_med=st.one_of(st.none(), st.integers(0, 100)),
    )

    @given(st.lists(clause_strategy, max_size=6), route_strategy())
    def test_apply_matches_naive_first_match(self, clauses, route):
        route_map = RouteMap(clauses)
        expected = None
        for clause in clauses:
            if clause.match.matches(route):
                expected = clause.apply(route)
                break
        else:
            expected = route
        actual = route_map.apply(route)
        if expected is None:
            assert actual is None
        else:
            assert actual is not None
            assert actual.local_pref == expected.local_pref
            assert actual.med == expected.med

    @given(st.lists(clause_strategy, max_size=6), route_strategy())
    def test_apply_never_mutates_input(self, clauses, route):
        snapshot = (route.local_pref, route.med, route.as_path)
        RouteMap(clauses).apply(route)
        assert (route.local_pref, route.med, route.as_path) == snapshot


class TestIgpProperties:
    @settings(max_examples=30)
    @given(
        st.lists(
            st.tuples(
                st.integers(1, 8), st.integers(1, 8), st.integers(1, 10)
            ),
            min_size=1,
            max_size=15,
        )
    )
    def test_triangle_inequality_and_symmetry(self, links):
        igp = IGPTopology()
        for a, b, cost in links:
            if a != b:
                igp.add_link(a, b, cost)
        nodes = list(igp.routers())
        for a in nodes[:4]:
            for b in nodes[:4]:
                assert igp.cost(a, b) == igp.cost(b, a)  # integer costs: exact
                for c in nodes[:4]:
                    if all(
                        not math.isinf(igp.cost(x, y))
                        for x, y in ((a, c), (c, b))
                    ):
                        assert igp.cost(a, b) <= igp.cost(a, c) + igp.cost(c, b) + 1e-9


class TestSelectBestEquivalence:
    """select_best (engine fast path) must agree with run_decision."""

    from repro.bgp.decision import select_best  # noqa: PLC0415

    @given(st.lists(route_strategy(), min_size=1, max_size=8))
    def test_always_compare(self, routes):
        from repro.bgp.decision import select_best

        routes = distinct_peers(routes)
        config = DecisionConfig(med_always_compare=True)
        assert select_best(routes, config) is run_decision(routes, config).best

    @given(st.lists(route_strategy(), min_size=1, max_size=8))
    def test_per_neighbor_med(self, routes):
        from repro.bgp.decision import select_best

        routes = distinct_peers(routes)
        config = DecisionConfig(med_always_compare=False)
        assert select_best(routes, config) is run_decision(routes, config).best

    @given(st.lists(route_strategy(), min_size=1, max_size=6))
    def test_with_igp_costs(self, routes):
        from repro.bgp.decision import select_best
        from repro.bgp.attributes import RouteSource

        routes = [
            route.replace(source=RouteSource.IBGP) for route in distinct_peers(routes)
        ]
        config = DecisionConfig(use_igp_cost=True)

        def cost(route):
            return float(route.next_hop % 7)

        assert (
            select_best(routes, config, cost)
            is run_decision(routes, config, cost).best
        )
