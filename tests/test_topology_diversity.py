"""Unit tests for route-diversity statistics (Figure 2 / Table 1)."""

from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.topology.dataset import ObservedRoute, PathDataset
from repro.topology.diversity import (
    distinct_paths_histogram,
    max_unique_paths_per_as,
    prefixes_per_path_histogram,
    quantiles,
    route_diversity_report,
)

P1 = Prefix("10.0.0.0/24")
P2 = Prefix("10.0.1.0/24")


def build_dataset():
    entries = [
        ("a", (1, 2, 4), P1),
        ("a", (1, 3, 4), P1),  # second path for pair (4, 1)
        ("a", (1, 2, 4), P2),  # same path, second prefix
        ("b", (2, 4), P1),
        ("b", (2, 4), P2),
    ]
    ds = PathDataset()
    for point, path, prefix in entries:
        ds.add(ObservedRoute(point, path[0], prefix, ASPath(path)))
    return ds


class TestPairHistogram:
    def test_counts_distinct_paths_per_pair(self):
        histogram = distinct_paths_histogram(build_dataset())
        assert histogram[2] == 1  # pair (4, 1)
        assert histogram[1] == 1  # pair (4, 2)

    def test_empty_dataset(self):
        assert distinct_paths_histogram(PathDataset()) == {}


class TestMaxUniquePaths:
    def test_counts_suffixes_per_prefix(self):
        per_as = max_unique_paths_per_as(build_dataset())
        # AS 4 only ever appears as origin: one suffix (4,)
        assert per_as[4] == 1
        # AS 1 received two distinct routes for P1
        assert per_as[1] == 2
        # AS 2 relays (2, 4): one suffix per prefix
        assert per_as[2] == 1

    def test_transit_suffix_counted(self):
        ds = PathDataset(
            [
                ObservedRoute("a", 1, P1, ASPath((1, 2, 4))),
                ObservedRoute("b", 3, P1, ASPath((3, 2, 5, 4))),
            ]
        )
        per_as = max_unique_paths_per_as(ds)
        assert per_as[2] == 2  # suffixes (2, 4) and (2, 5, 4)


class TestPathPopularity:
    def test_counts_prefixes_per_path(self):
        histogram = prefixes_per_path_histogram(build_dataset())
        assert histogram[2] == 2  # (1,2,4) and (2,4) each used by two prefixes
        assert histogram[1] == 1  # (1,3,4) used by one


class TestQuantiles:
    def test_empty(self):
        assert quantiles([], (50.0,)) == {50.0: 0}

    def test_median_of_uniform(self):
        values = [1, 2, 3, 4, 5]
        result = quantiles(values, (0.0, 50.0, 100.0))
        assert result[0.0] == 1
        assert result[50.0] == 3
        assert result[100.0] == 5

    def test_values_are_attained(self):
        values = [1, 1, 1, 10]
        result = quantiles(values, (90.0,))
        assert result[90.0] in values


class TestReport:
    def test_fraction_multipath(self):
        report = route_diversity_report(build_dataset())
        assert report.fraction_pairs_multipath == 0.5

    def test_table1_keys(self):
        report = route_diversity_report(build_dataset())
        table = report.table1()
        assert set(table) == {50.0, 75.0, 90.0, 95.0, 98.0, 99.0, 100.0}

    def test_single_prefix_path_fraction(self):
        report = route_diversity_report(build_dataset())
        assert 0.0 <= report.fraction_single_prefix_paths <= 1.0

    def test_empty_report(self):
        report = route_diversity_report(PathDataset())
        assert report.fraction_pairs_multipath == 0.0
        assert report.pairs_with_many_paths == 0

    def test_mini_internet_exhibits_diversity(self, mini_dataset):
        """The synthetic substrate must show the paper's core phenomenon."""
        report = route_diversity_report(mini_dataset)
        assert report.fraction_pairs_multipath > 0.02
        assert max(report.max_paths_per_as.values()) >= 2
