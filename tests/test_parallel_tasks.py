"""Tests for the supervised pool's generic-task surface (`run_tasks`).

The campaign engine fans arbitrary picklable tasks — not just prefixes —
through the same crash-isolated pool.  These tests cover the generic
contract directly: deterministic key-ordered merge, per-task network
isolation, context shipping, worker-side metrics folding, and poison
quarantine on injected crashes.
"""

from dataclasses import dataclass

import pytest

from repro.bgp.network import Network
from repro.core.model import MODEL_DECISION_CONFIG
from repro.net.prefix import Prefix
from repro.obs.metrics import MetricsRegistry, get_registry, set_registry
from repro.parallel import (
    GenericRunStats,
    ParallelConfig,
    SupervisedPool,
    TaskFailure,
    WorkerFaults,
)
from repro.resilience.retry import POISON, RetryPolicy

pytestmark = pytest.mark.timeout(120)


def small_network():
    net = Network("tasks")
    hub = net.add_router(100)
    for index in range(3):
        net.connect(net.add_router(200 + index), hub)
    net.originate(hub, Prefix("10.0.0.0/24"))
    return net


@dataclass(frozen=True)
class ProbeTask:
    """Reports the worker-side view: router count, context, mutations."""

    name: str

    @property
    def key(self) -> str:
        return f"probe:{self.name}"

    def run(self, network, context, config, policy) -> dict:
        # Count first, then mutate: if worker state leaked between tasks
        # the next task would see the router gone.
        routers = len(network.routers)
        victim = next(iter(network.routers.values()))
        network.routers.pop(victim.router_id)
        get_registry().counter("probe.ticks").inc()
        return {
            "routers": routers,
            "context": context,
            "config_ok": config is not None and policy is not None,
        }


@dataclass(frozen=True)
class FailingTask:
    name: str

    @property
    def key(self) -> str:
        return f"fail:{self.name}"

    def run(self, network, context, config, policy) -> dict:
        raise RuntimeError("task exploded on purpose")


def run_pool(tasks, workers=2, context=None, faults=None, **overrides):
    parallel = ParallelConfig(
        workers=workers, task_timeout=30, max_resubmits=1, faults=faults,
        **overrides,
    )
    pool = SupervisedPool(
        small_network(), MODEL_DECISION_CONFIG, RetryPolicy(), parallel,
        context=context,
    )
    with pool:
        return pool.run_tasks(tasks)


class TestRunTasks:
    def test_results_keyed_and_complete(self):
        tasks = [ProbeTask(f"t{i}") for i in range(6)]
        stats = run_pool(tasks)
        assert isinstance(stats, GenericRunStats)
        assert sorted(stats.results) == sorted(t.key for t in tasks)
        assert stats.failed == {}
        assert stats.supervision["workers"] == 2

    def test_each_task_gets_a_fresh_network(self):
        # Every probe removes a router after counting; with more tasks
        # than workers, leaked state would show a shrinking count.
        stats = run_pool([ProbeTask(f"t{i}") for i in range(8)])
        assert {r["routers"] for r in stats.results.values()} == {4}

    def test_context_is_shipped_to_workers(self):
        stats = run_pool(
            [ProbeTask("ctx")], context={"baseline": "checksum-123"}
        )
        assert stats.results["probe:ctx"]["context"] == {
            "baseline": "checksum-123"
        }
        assert stats.results["probe:ctx"]["config_ok"]

    def test_worker_metrics_fold_into_parent_registry(self):
        registry = MetricsRegistry()
        set_registry(registry)
        try:
            run_pool([ProbeTask(f"t{i}") for i in range(5)])
            assert registry.counter("probe.ticks").value == 5
        finally:
            set_registry(MetricsRegistry())

    def test_task_exception_is_poison_not_fatal(self):
        stats = run_pool([ProbeTask("ok"), FailingTask("boom")])
        assert "probe:ok" in stats.results
        failure = stats.failed["fail:boom"]
        assert isinstance(failure, TaskFailure)
        assert failure.status == POISON
        # Each dispatch is recorded by its failure class.
        assert failure.failures == ("error", "error")

    def test_injected_crash_is_poison_after_resubmits(self):
        tasks = [ProbeTask("a"), ProbeTask("b"), ProbeTask("c")]
        stats = run_pool(
            tasks,
            faults=WorkerFaults(crash_prefixes=("probe:b",)),
        )
        assert stats.failed["probe:b"].status == POISON
        assert stats.failed["probe:b"].resubmits >= 1
        assert sorted(stats.results) == ["probe:a", "probe:c"]

    def test_merge_order_is_deterministic(self):
        # Results fold in key-sorted order regardless of completion
        # order; two runs produce identical dict iteration order.
        tasks = [ProbeTask(f"t{i}") for i in range(6)]
        first = list(run_pool(tasks).results)
        second = list(run_pool(tasks, workers=3).results)
        assert first == second == sorted(first)
