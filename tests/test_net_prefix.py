"""Unit tests for repro.net.prefix."""

import pytest

from repro.errors import ParseError
from repro.net.prefix import Prefix, prefix_for_asn


class TestPrefixConstruction:
    def test_parses_cidr_string(self):
        prefix = Prefix("10.1.0.0/16")
        assert prefix.length == 16
        assert prefix.network == 10 << 24 | 1 << 16

    def test_canonicalises_host_bits(self):
        assert Prefix("10.1.2.3/16") == Prefix("10.1.0.0/16")

    def test_zero_length_prefix(self):
        assert Prefix("0.0.0.0/0").contains(Prefix("255.0.0.0/8"))

    def test_full_length_prefix(self):
        assert Prefix("1.2.3.4/32").network == Prefix("1.2.3.4/32").network

    @pytest.mark.parametrize("bad", ["10.0.0.0", "10.0.0.0/33", "10.0.0/8", "x/8"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ParseError):
            Prefix(bad)

    def test_rejects_length_with_string(self):
        with pytest.raises(TypeError):
            Prefix("10.0.0.0/8", 8)

    def test_int_constructor_requires_length(self):
        with pytest.raises(TypeError):
            Prefix(0)


class TestPrefixSemantics:
    def test_contains_subprefix(self):
        assert Prefix("10.0.0.0/8").contains(Prefix("10.1.0.0/16"))

    def test_does_not_contain_superprefix(self):
        assert not Prefix("10.1.0.0/16").contains(Prefix("10.0.0.0/8"))

    def test_does_not_contain_disjoint(self):
        assert not Prefix("10.0.0.0/8").contains(Prefix("11.0.0.0/8"))

    def test_contains_host_address(self):
        assert Prefix("10.0.0.0/8").contains(10 << 24 | 5)
        assert not Prefix("10.0.0.0/8").contains(11 << 24)

    def test_supernet_default_one_bit(self):
        assert Prefix("10.1.0.0/16").supernet() == Prefix("10.0.0.0/15")

    def test_supernet_explicit_length(self):
        assert Prefix("10.1.2.0/24").supernet(8) == Prefix("10.0.0.0/8")

    def test_supernet_rejects_longer(self):
        with pytest.raises(ValueError):
            Prefix("10.0.0.0/8").supernet(16)

    def test_subnets_partition(self):
        parent = Prefix("10.0.0.0/8")
        low, high = parent.subnets()
        assert low == Prefix("10.0.0.0/9")
        assert high == Prefix("10.128.0.0/9")
        assert parent.contains(low) and parent.contains(high)

    def test_subnets_of_host_route_rejected(self):
        with pytest.raises(ValueError):
            list(Prefix("1.2.3.4/32").subnets())

    def test_ordering(self):
        assert Prefix("9.0.0.0/8") < Prefix("10.0.0.0/8")
        assert Prefix("10.0.0.0/8") < Prefix("10.0.0.0/16")

    def test_str_round_trip(self):
        for text in ("0.0.0.0/0", "10.0.0.0/8", "192.168.1.0/24", "1.2.3.4/32"):
            assert str(Prefix(text)) == text

    def test_hashable(self):
        assert len({Prefix("10.0.0.0/8"), Prefix("10.0.0.0/8")}) == 1

    def test_netmask(self):
        assert Prefix("10.0.0.0/8").netmask == 0xFF000000
        assert Prefix("0.0.0.0/0").netmask == 0


class TestPrefixForAsn:
    def test_encodes_asn_in_high_octets(self):
        prefix = prefix_for_asn(3356)
        assert prefix.length == 24
        assert prefix.network >> 16 == 3356

    def test_index_selects_third_octet(self):
        assert prefix_for_asn(7, 1) != prefix_for_asn(7, 0)
        assert prefix_for_asn(7, 1).network >> 8 & 0xFF == 1

    def test_rejects_wide_asn(self):
        with pytest.raises(ValueError):
            prefix_for_asn(1 << 16)

    def test_rejects_zero_asn(self):
        with pytest.raises(ValueError):
            prefix_for_asn(0)

    def test_rejects_large_index(self):
        with pytest.raises(ValueError):
            prefix_for_asn(7, 256)
