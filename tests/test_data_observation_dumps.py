"""Unit tests for observation points and bgpdump round-trips."""

import io

from repro.data.dumps import SNAPSHOT_TIME, read_table_dump, write_table_dump
from repro.data.observation import collect_dataset, select_observation_points
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.topology.classify import Level
from repro.topology.dataset import ObservedRoute, PathDataset


class TestSelection:
    def test_respects_as_budget(self, mini_internet):
        points = select_observation_points(mini_internet, 8, seed=1)
        assert len({p.asn for p in points}) == 8

    def test_points_reference_real_routers(self, mini_internet):
        points = select_observation_points(mini_internet, 8, seed=1)
        for point in points:
            router = mini_internet.network.routers[point.router_id]
            assert router.asn == point.asn

    def test_multi_point_fraction_creates_multi_feeds(self, mini_internet):
        points = select_observation_points(
            mini_internet, 14, seed=1, multi_point_fraction=1.0
        )
        by_as = {}
        for point in points:
            by_as.setdefault(point.asn, []).append(point)
        multi = [asn for asn, pts in by_as.items() if len(pts) > 1]
        assert multi  # every multi-router AS chosen got several feeds

    def test_zero_multi_fraction_single_feeds(self, mini_internet):
        points = select_observation_points(
            mini_internet, 10, seed=1, multi_point_fraction=0.0
        )
        by_as = {}
        for point in points:
            by_as[point.asn] = by_as.get(point.asn, 0) + 1
        assert all(count == 1 for count in by_as.values())

    def test_deterministic(self, mini_internet):
        a = select_observation_points(mini_internet, 10, seed=3)
        b = select_observation_points(mini_internet, 10, seed=3)
        assert a == b

    def test_core_bias(self, mini_internet):
        """Tier-1/level-2 ASes are overrepresented among observation points."""
        points = select_observation_points(mini_internet, 12, seed=2)
        core = set(mini_internet.level1_asns) | set(
            mini_internet.level_asns(Level.LEVEL2)
        )
        chosen_core = sum(1 for p in points if p.asn in core)
        core_fraction_everywhere = len(core) / len(mini_internet.network.ases)
        assert chosen_core / len({p.asn for p in points}) > core_fraction_everywhere


class TestCollection:
    def test_paths_start_with_observer(self, mini_internet, mini_dataset):
        for route in mini_dataset:
            assert route.path.head_asn == route.observer_asn

    def test_own_prefix_recorded_as_trivial_path(self, mini_internet):
        points = select_observation_points(mini_internet, 6, seed=4)
        dataset = collect_dataset(mini_internet.network, points)
        point = points[0]
        own_prefixes = mini_internet.prefixes_by_as[point.asn]
        own = [
            r
            for r in dataset
            if r.point_id == point.point_id and r.prefix in own_prefixes
        ]
        assert own and all(r.path.asns == (point.asn,) for r in own)

    def test_exclude_own_prefixes(self, mini_internet):
        points = select_observation_points(mini_internet, 6, seed=4)
        dataset = collect_dataset(
            mini_internet.network, points, include_own_prefixes=False
        )
        assert all(len(r.path) > 1 for r in dataset)

    def test_paths_match_loc_rib(self, mini_internet):
        points = select_observation_points(mini_internet, 6, seed=4)
        dataset = collect_dataset(mini_internet.network, points)
        for route in dataset.routes()[:50]:
            router = next(
                mini_internet.network.routers[p.router_id]
                for p in points
                if p.point_id == route.point_id
            )
            best = router.best(route.prefix)
            assert (route.observer_asn,) + best.as_path == route.path.asns


class TestDumps:
    def make_dataset(self):
        ds = PathDataset()
        ds.add(ObservedRoute("op-1-0", 1, Prefix("10.0.0.0/24"), ASPath((1, 2, 3))))
        ds.add(ObservedRoute("op-1-1", 1, Prefix("10.0.0.0/24"), ASPath((1, 3))))
        ds.add(ObservedRoute("op-5-0", 5, Prefix("10.0.1.0/24"), ASPath((5, 3))))
        return ds

    def test_round_trip_preserves_entries(self):
        ds = self.make_dataset()
        buffer = io.StringIO()
        lines = write_table_dump(ds, buffer)
        assert lines == 3
        result = read_table_dump(io.StringIO(buffer.getvalue()))
        assert result.lines == 3
        assert result.dataset.unique_paths() == ds.unique_paths()
        assert len(result.dataset.observation_points()) == 3

    def test_round_trip_through_file(self, tmp_path):
        ds = self.make_dataset()
        path = tmp_path / "rib.dump"
        write_table_dump(ds, path)
        result = read_table_dump(path)
        assert result.dataset.summary()["routes"] == 3

    def test_timestamp_written(self):
        buffer = io.StringIO()
        write_table_dump(self.make_dataset(), buffer, timestamp=SNAPSHOT_TIME)
        assert f"|{SNAPSHOT_TIME}|" in buffer.getvalue()

    def test_skips_as_set_lines(self):
        text = (
            "TABLE_DUMP2|1|B|0.1.0.1|1|10.0.0.0/24|1 2 {3,4}|IGP|0.1.0.1|0|0||NAG|\n"
            "TABLE_DUMP2|1|B|0.1.0.1|1|10.0.0.0/24|1 2|IGP|0.1.0.1|0|0||NAG|\n"
        )
        result = read_table_dump(io.StringIO(text))
        assert result.skipped_as_set == 1
        assert len(result.dataset) == 1

    def test_skips_malformed_lines(self):
        text = "garbage\nTABLE_DUMP2|1|B|0.1.0.1|1|10.0.0.0/24|1 2|IGP\n"
        result = read_table_dump(io.StringIO(text))
        assert result.skipped_malformed == 1
        assert len(result.dataset) == 1

    def test_strict_mode_raises(self):
        import pytest

        from repro.errors import ParseError

        with pytest.raises(ParseError):
            read_table_dump(io.StringIO("garbage|line\n"), strict=True)

    def test_comments_and_blank_lines_ignored(self):
        text = "# comment\n\nTABLE_DUMP2|1|B|0.1.0.1|1|10.0.0.0/24|1 2|IGP|x|0|0||NAG|\n"
        result = read_table_dump(io.StringIO(text))
        assert result.lines == 1 and len(result.dataset) == 1

    def test_path_must_start_at_peer_as(self):
        text = "TABLE_DUMP2|1|B|0.1.0.1|9|10.0.0.0/24|1 2|IGP|x|0|0||NAG|\n"
        result = read_table_dump(io.StringIO(text), max_malformed_fraction=None)
        assert result.skipped_malformed == 1

    def test_synthetic_dump_round_trip(self, mini_internet, mini_dataset):
        buffer = io.StringIO()
        write_table_dump(mini_dataset, buffer)
        result = read_table_dump(io.StringIO(buffer.getvalue()))
        assert result.dataset.unique_paths() == mini_dataset.unique_paths()
        assert (
            result.dataset.summary()["observation_points"]
            == mini_dataset.summary()["observation_points"]
        )


class TestMalformedThreshold:
    """Lenient parsing bails out when most of the file is garbage."""

    GOOD = "TABLE_DUMP2|1|B|0.1.0.1|1|10.0.0.0/24|1 2|IGP|0.1.0.1|0|0||NAG|\n"
    BAD = "garbage|line\n"

    def test_mostly_garbage_raises_dataset_error(self):
        import pytest

        from repro.errors import DatasetError

        text = self.GOOD + self.BAD * 9
        with pytest.raises(DatasetError) as excinfo:
            read_table_dump(io.StringIO(text))
        assert "9 of 10" in str(excinfo.value)

    def test_damage_below_threshold_is_tolerated(self):
        text = self.GOOD * 9 + self.BAD
        result = read_table_dump(io.StringIO(text))
        assert result.skipped_malformed == 1
        assert len(result.dataset) == 9

    def test_exactly_at_threshold_is_tolerated(self):
        text = self.GOOD + self.BAD  # 1/2 malformed == default 0.5, not above
        result = read_table_dump(io.StringIO(text))
        assert result.skipped_malformed == 1

    def test_none_disables_the_threshold(self):
        result = read_table_dump(
            io.StringIO(self.BAD * 10), max_malformed_fraction=None
        )
        assert result.skipped_malformed == 10
        assert len(result.dataset) == 0

    def test_custom_threshold(self):
        import pytest

        from repro.errors import DatasetError

        text = self.GOOD * 8 + self.BAD * 2
        with pytest.raises(DatasetError):
            read_table_dump(io.StringIO(text), max_malformed_fraction=0.1)

    def test_strict_mode_unaffected_by_threshold(self):
        import pytest

        from repro.errors import ParseError

        with pytest.raises(ParseError):
            read_table_dump(
                io.StringIO(self.BAD), strict=True, max_malformed_fraction=None
            )

    def test_as_set_skips_do_not_count_against_guard(self):
        as_set = (
            "TABLE_DUMP2|1|B|0.1.0.1|1|10.0.0.0/24|1 {2,3}|IGP|0.1.0.1|0|0||NAG|\n"
        )
        result = read_table_dump(io.StringIO(as_set * 9 + self.GOOD))
        assert result.skipped_as_set == 9
        assert result.skipped_malformed == 0
        assert len(result.dataset) == 1

    def test_bad_prefix_with_as_set_path_counts_as_malformed(self):
        # Historically a line with a broken prefix *and* an AS_SET path was
        # misclassified as an AS_SET skip, hiding the damage from the
        # guard.  Fields are now checked left-to-right: the prefix wins.
        import pytest

        from repro.errors import DatasetError

        bad = "TABLE_DUMP2|1|B|0.1.0.1|1|10.0.0.0|1 {2,3}|IGP|0.1.0.1|0|0||NAG|\n"
        result = read_table_dump(
            io.StringIO(bad + self.GOOD * 2), max_malformed_fraction=None
        )
        assert result.skipped_malformed == 1
        assert result.skipped_as_set == 0
        assert result.report.quarantined == {"bad-prefix": 1}
        with pytest.raises(DatasetError):
            read_table_dump(io.StringIO(bad * 2 + self.GOOD))


class TestHardenedParser:
    """Satellite regressions: lenient mode survives what used to crash."""

    GOOD = TestMalformedThreshold.GOOD

    def test_bad_peer_as_is_quarantined_not_a_crash(self):
        # Regression: int(peer_as) raised ValueError even in lenient mode.
        bad = "TABLE_DUMP2|1|B|0.1.0.1|x7|10.0.0.0/24|7 2|IGP|0.1.0.1|0|0||NAG|\n"
        result = read_table_dump(io.StringIO(self.GOOD + bad))
        assert result.skipped_malformed == 1
        assert result.report.quarantined == {"bad-peer-as": 1}
        assert len(result.dataset) == 1

    def test_peer_as_out_of_range_is_quarantined(self):
        bad = (
            "TABLE_DUMP2|1|B|0.1.0.1|4294967296|10.0.0.0/24|7 2"
            "|IGP|0.1.0.1|0|0||NAG|\n"
        )
        result = read_table_dump(io.StringIO(self.GOOD + bad))
        assert result.report.quarantined == {"bad-peer-as": 1}

    def test_non_ascii_bytes_quarantine_one_line(self, tmp_path):
        # Regression: the reader opened files with encoding="ascii", so a
        # single stray byte aborted the whole read with UnicodeDecodeError.
        path = tmp_path / "dirty.dump"
        path.write_bytes(
            self.GOOD.encode()
            + b"TABLE_DUMP2|1|B|0.1.0.1|1|\xff\xfe not text\n"
            + self.GOOD.encode()
        )
        result = read_table_dump(path)
        assert result.report.quarantined == {"undecodable-bytes": 1}
        assert len(result.dataset) == 2

    def test_rejections_carry_1_based_line_numbers(self):
        from repro.data.dumps import iter_table_dump

        lines = ["# comment\n", "\n", self.GOOD, "garbage|line\n"]
        results = list(iter_table_dump(lines))
        assert [r.line_number for r in results] == [3, 4]
        assert results[0].accepted
        assert results[1].rejection.line_number == 4

    def test_strict_error_names_line_and_field(self):
        import pytest

        from repro.errors import ParseError

        bad = "TABLE_DUMP2|1|B|0.1.0.1|x7|10.0.0.0/24|7 2|IGP|0.1.0.1|0|0||NAG|\n"
        with pytest.raises(ParseError) as excinfo:
            read_table_dump(io.StringIO(self.GOOD * 2 + bad), strict=True)
        message = str(excinfo.value)
        assert "line 3" in message
        assert "bad-peer-as" in message
        assert "'x7'" in message

    def test_strict_undecodable_bytes_name_the_line(self, tmp_path):
        import pytest

        from repro.errors import ParseError

        path = tmp_path / "dirty.dump"
        path.write_bytes(self.GOOD.encode() + b"\xff\xfe\n")
        with pytest.raises(ParseError) as excinfo:
            read_table_dump(path, strict=True)
        assert "line 2" in str(excinfo.value)

    def test_strict_mode_tolerates_as_set_lines(self):
        as_set = (
            "TABLE_DUMP2|1|B|0.1.0.1|1|10.0.0.0/24|1 {2,3}|IGP|0.1.0.1|0|0||NAG|\n"
        )
        result = read_table_dump(io.StringIO(self.GOOD + as_set), strict=True)
        assert result.skipped_as_set == 1
        assert len(result.dataset) == 1
