"""Unit tests for repro.net.aspath."""

import pytest

from repro.errors import ParseError
from repro.net.aspath import ASPath, clean_paths


class TestParsing:
    def test_parses_space_separated(self):
        assert ASPath.parse("1 2 3").asns == (1, 2, 3)

    def test_parses_dash_separated(self):
        assert ASPath.parse("1-2-3").asns == (1, 2, 3)

    def test_parses_empty(self):
        assert len(ASPath.parse("")) == 0

    def test_rejects_as_set(self):
        with pytest.raises(ParseError):
            ASPath.parse("1 2 {3,4}")

    def test_str_round_trip(self):
        assert str(ASPath.parse("10 20 30")) == "10 20 30"


class TestAccessors:
    def test_origin_and_head(self):
        path = ASPath((1, 2, 3))
        assert path.head_asn == 1
        assert path.origin_asn == 3

    def test_empty_path_has_no_origin(self):
        with pytest.raises(ValueError):
            ASPath(()).origin_asn
        with pytest.raises(ValueError):
            ASPath(()).head_asn

    def test_contains(self):
        assert 2 in ASPath((1, 2, 3))
        assert 9 not in ASPath((1, 2, 3))

    def test_indexing_and_slicing(self):
        path = ASPath((1, 2, 3, 4))
        assert path[0] == 1
        assert path[1:] == ASPath((2, 3, 4))

    def test_equality_with_tuple(self):
        assert ASPath((1, 2)) == (1, 2)

    def test_hash_matches_equality(self):
        assert len({ASPath((1, 2)), ASPath((1, 2))}) == 1


class TestPrepending:
    def test_collapses_consecutive_duplicates(self):
        assert ASPath((1, 2, 2, 2, 3)).without_prepending() == ASPath((1, 2, 3))

    def test_no_change_without_prepending(self):
        assert ASPath((1, 2, 3)).without_prepending() == ASPath((1, 2, 3))

    def test_prepended_by(self):
        assert ASPath((2, 3)).prepended_by(1) == ASPath((1, 2, 3))


class TestLoops:
    def test_detects_non_consecutive_repeat(self):
        assert ASPath((1, 2, 3, 2)).has_loop()

    def test_prepending_is_not_a_loop(self):
        assert not ASPath((1, 2, 2, 3)).has_loop()

    def test_clean_path_has_no_loop(self):
        assert not ASPath((1, 2, 3)).has_loop()


class TestSuffixes:
    def test_suffix_from_middle(self):
        assert ASPath((1, 2, 3, 4)).suffix_from(3) == ASPath((3, 4))

    def test_suffix_from_head_is_whole_path(self):
        path = ASPath((1, 2, 3))
        assert path.suffix_from(1) == path

    def test_suffix_from_absent_as(self):
        with pytest.raises(ValueError):
            ASPath((1, 2)).suffix_from(9)


class TestEdges:
    def test_yields_adjacent_pairs(self):
        assert list(ASPath((1, 2, 3)).edges()) == [(1, 2), (2, 3)]

    def test_skips_prepended_self_edges(self):
        assert list(ASPath((1, 2, 2, 3)).edges()) == [(1, 2), (2, 3)]


class TestCleanPaths:
    def test_removes_prepending_and_loops(self):
        paths = [ASPath((1, 2, 2, 3)), ASPath((1, 2, 1)), ASPath(())]
        cleaned = clean_paths(paths)
        assert cleaned == [ASPath((1, 2, 3))]
