"""Unit tests for small pieces: errors, sessions, stats, workload scaling."""

import pytest

from repro.bgp.engine import EngineStats
from repro.bgp.network import Network
from repro.data.synthesis import SyntheticConfig
from repro.errors import (
    DatasetError,
    ParseError,
    RefinementError,
    ReproError,
    SimulationError,
    TopologyError,
)
from repro.experiments.workloads import DEFAULT
from repro.net.prefix import Prefix


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [ParseError, TopologyError, SimulationError, RefinementError, DatasetError],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_parse_error_is_value_error(self):
        assert issubclass(ParseError, ValueError)


class TestSession:
    def test_kind_detection(self):
        net = Network()
        a, b = net.add_router(1), net.add_router(2)
        c = net.add_router(1)
        ebgp, _ = net.connect(a, b)
        ibgp, _ = net.connect(a, c)
        assert ebgp.is_ebgp and not ebgp.is_ibgp
        assert ibgp.is_ibgp and not ibgp.is_ebgp

    def test_ensure_maps_create_once(self):
        net = Network()
        a, b = net.add_router(1), net.add_router(2)
        session, _ = net.connect(a, b)
        first = session.ensure_import_map()
        assert session.ensure_import_map() is first
        assert session.import_map is first
        export = session.ensure_export_map()
        assert session.export_map is export

    def test_repr_names_endpoints(self):
        net = Network()
        a, b = net.add_router(1), net.add_router(2)
        session, _ = net.connect(a, b)
        assert "AS1.r1" in repr(session) and "AS2.r1" in repr(session)


class TestEngineStats:
    def test_merge_accumulates(self):
        a = EngineStats(prefixes=1, messages=10, decisions=5)
        a.per_prefix_messages[Prefix("10.0.0.0/24")] = 10
        b = EngineStats(prefixes=2, messages=20, decisions=7)
        b.diverged.append(Prefix("10.0.1.0/24"))
        a.merge(b)
        assert a.prefixes == 3
        assert a.messages == 30
        assert a.decisions == 12
        assert len(a.diverged) == 1
        assert len(a.per_prefix_messages) == 1


class TestWorkloadScaling:
    def test_scaled_config_scales_populations(self):
        scaled = SyntheticConfig(n_stub=100).scaled(0.5)
        assert scaled.n_stub == 50

    def test_scaled_keeps_fractions(self):
        base = SyntheticConfig(weird_session_fraction=0.2)
        assert base.scaled(2.0).weird_session_fraction == 0.2

    def test_scaled_floors_protect_minimums(self):
        tiny = SyntheticConfig().scaled(0.01)
        assert tiny.n_level1 >= 3
        assert tiny.n_stub >= 6

    def test_workload_scaled(self):
        scaled = DEFAULT.scaled(0.5, name="half")
        assert scaled.name == "half"
        assert scaled.n_observation_ases == round(DEFAULT.n_observation_ases * 0.5)
        assert scaled.config.n_stub == round(DEFAULT.config.n_stub * 0.5)

    def test_workload_is_frozen(self):
        with pytest.raises(Exception):
            DEFAULT.name = "x"
