"""Scenario generators and per-scenario semantics on a hand-built line.

The fixture model is the line AS1 - AS2 - AS3 - AS4 with known answers
for every campaign kind: cutting AS2-AS3 bisects the line, AS2 hijacking
AS4's prefix captures both of its neighbours, and a 2-site anycast on
the line's endpoints splits the interior observers evenly.
"""

import pickle

import pytest

from repro.campaign import (
    CatchmentScenario,
    EdgeFailureScenario,
    HijackScenario,
    context_from_artifact,
    generate_catchment,
    generate_depeer,
    generate_hijack,
    generate_link_failure,
)
from repro.core.build import build_initial_model
from repro.core.model import MODEL_DECISION_CONFIG, ASRoutingModel
from repro.core.refine import Refiner
from repro.errors import TopologyError
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.resilience.retry import RetryPolicy
from repro.serve import compile_artifact
from repro.topology.dataset import ObservedRoute, PathDataset

P = Prefix("10.0.0.0/24")


def line_model():
    """The refined line AS1 - AS2 - AS3 - AS4, observed from both ends."""
    ds = PathDataset()
    paths = [(1, 2, 3, 4), (4, 3, 2, 1), (2, 3, 4), (3, 2, 1), (1, 2), (4, 3)]
    for index, path in enumerate(paths):
        ds.add(ObservedRoute(f"p{index}", path[0], P, ASPath(path)))
    model = build_initial_model(ds)
    Refiner(model, ds).run()
    return model


@pytest.fixture(scope="module")
def model():
    return line_model()


@pytest.fixture(scope="module")
def context(model):
    artifact, _ = compile_artifact(model)
    model.network.clear_routing()
    return context_from_artifact(artifact)


def run_scenario(model, scenario, context):
    """Execute one scenario exactly like the engine: on a fresh copy."""
    network = pickle.loads(pickle.dumps(model.network))
    return scenario.run(
        network, context, MODEL_DECISION_CONFIG, RetryPolicy()
    )


class TestGenerators:
    def test_depeer_covers_every_adjacency(self, model):
        keys = [s.key for s in generate_depeer(model)]
        assert keys == [
            "depeer:AS1-AS2", "depeer:AS2-AS3", "depeer:AS3-AS4"
        ]

    def test_depeer_filter_restricts_to_incident_edges(self, model):
        keys = [s.key for s in generate_depeer(model, ases=[1])]
        assert keys == ["depeer:AS1-AS2"]

    def test_depeer_unknown_as_raises_naming_it(self, model):
        with pytest.raises(TopologyError, match="AS 64999"):
            generate_depeer(model, ases=[64999])

    def test_link_failure_targets_top_degree(self, model):
        # AS2 and AS3 both have degree 2; ties break toward lower ASN.
        scenarios = generate_link_failure(model, top_degree=1)
        assert [s.key for s in scenarios] == [
            "link-failure:AS1-AS2", "link-failure:AS2-AS3"
        ]

    def test_link_failure_seeds_override_degree(self, model):
        scenarios = generate_link_failure(model, seeds=[4])
        assert [s.key for s in scenarios] == ["link-failure:AS3-AS4"]

    def test_link_failure_unknown_seed_raises(self, model):
        with pytest.raises(TopologyError, match="AS 64999"):
            generate_link_failure(model, seeds=[64999])

    def test_hijack_defaults_to_every_other_as(self, model):
        scenarios = generate_hijack(model, victim=4)
        assert [s.attacker for s in scenarios] == [1, 2, 3]
        assert scenarios[0].key == "hijack:AS1->AS4"

    def test_hijack_unknown_victim_raises(self, model):
        with pytest.raises(TopologyError):
            generate_hijack(model, victim=64999)

    def test_hijack_victim_cannot_attack_itself(self, model):
        with pytest.raises(TopologyError, match="victim"):
            generate_hijack(model, victim=4, attackers=[4])

    def test_catchment_base_plus_one_failure_per_site(self, model):
        keys = [s.key for s in generate_catchment(model, [1, 4])]
        assert keys == [
            "catchment:base", "catchment:fail-AS1", "catchment:fail-AS4"
        ]

    def test_catchment_needs_two_sites(self, model):
        with pytest.raises(TopologyError, match="2 distinct"):
            generate_catchment(model, [1, 1])

    def test_scenarios_are_picklable(self, model):
        for scenario in (
            *generate_depeer(model),
            *generate_hijack(model, victim=4),
            *generate_catchment(model, [1, 4]),
        ):
            assert pickle.loads(pickle.dumps(scenario)) == scenario


class TestEdgeFailure:
    def test_bisecting_edge_has_largest_blast(self, model, context):
        result = run_scenario(
            model, EdgeFailureScenario(2, 3), context
        )
        # Cutting AS2-AS3 severs all 8 cross-partition pairs.
        assert result["blast_radius"] == 8
        assert len(result["diff"]["lost"]) == 8
        assert result["diff"]["gained"] == []
        assert result["removed_sessions"] >= 1
        assert result["degraded"] == []

    def test_leaf_edge_loses_only_leaf_pairs(self, model, context):
        result = run_scenario(
            model, EdgeFailureScenario(1, 2), context
        )
        lost = {tuple(pair) for pair in result["diff"]["lost"]}
        # AS1 loses everyone and everyone loses AS1: 3 + 3 pairs.
        assert lost == {
            (1, 2), (1, 3), (1, 4), (2, 1), (3, 1), (4, 1)
        }

    def test_unknown_adjacency_raises_before_simulation(self, model, context):
        with pytest.raises(TopologyError):
            run_scenario(model, EdgeFailureScenario(1, 4), context)


class TestHijack:
    def test_known_capture_answer(self, model, context):
        # AS2 re-originates AS4's prefix: its neighbours AS1 and AS3
        # both prefer the shorter hijacked route.
        result = run_scenario(model, HijackScenario(4, 2), context)
        assert result["captured"] == [1, 3]
        assert result["partial"] == []
        assert result["blackholed"] == []
        assert result["capture_fraction"] == 1.0
        assert result["blast_radius"] == 2

    def test_distant_attacker_captures_less(self, model, context):
        result = run_scenario(model, HijackScenario(4, 1), context)
        assert result["captured"] == [2]
        assert result["capture_fraction"] == 0.5
        assert result["blast_radius"] == 1

    def test_unknown_attacker_raises(self, model, context):
        with pytest.raises(TopologyError, match="AS 64999"):
            run_scenario(model, HijackScenario(4, 64999), context)


class TestCatchment:
    def test_base_attraction_splits_the_line(self, model, context):
        result = run_scenario(
            model, CatchmentScenario((1, 4), None), context
        )
        assert result["attraction"] == {"2": [1], "3": [4]}
        assert result["blast_radius"] == 0

    def test_site_failure_shifts_its_catchment(self, model, context):
        result = run_scenario(
            model, CatchmentScenario((1, 4), 1), context
        )
        assert result["shifted"] == [2]
        assert result["attraction"] == {"2": [4], "3": [4]}
        assert result["blast_radius"] == 1

    def test_unknown_site_raises(self, model, context):
        with pytest.raises(TopologyError, match="AS 64999"):
            run_scenario(
                model, CatchmentScenario((1, 64999), None), context
            )


class TestModelRoundTrip:
    def test_scenario_model_rebuild_matches_origin_encoding(self, model):
        # Workers rebuild the model from the pickled network; the
        # canonical origin decoding must survive the round trip.
        network = pickle.loads(pickle.dumps(model.network))
        rebuilt = ASRoutingModel.from_network(network)
        assert set(rebuilt.prefix_by_origin) == set(model.prefix_by_origin)
