"""Integration tests for iBGP semantics and hot-potato routing."""

from repro.bgp import Network, simulate
from repro.bgp.attributes import RouteSource
from repro.net.prefix import Prefix


class TestIbgpBasics:
    def test_border_routers_prefer_own_ebgp_route(self, multi_router_as):
        net, routers, prefix = multi_router_as
        simulate(net)
        assert routers["a"].best(prefix).as_path == (20, 40)
        assert routers["b"].best(prefix).as_path == (30, 40)

    def test_ibgp_learned_routes_present_in_rib_in(self, multi_router_as):
        net, routers, prefix = multi_router_as
        simulate(net)
        sources = {r.source for r in routers["a"].rib_in_routes(prefix)}
        assert RouteSource.IBGP in sources and RouteSource.EBGP in sources

    def test_ibgp_does_not_prepend_or_change_next_hop(self, multi_router_as):
        net, routers, prefix = multi_router_as
        simulate(net)
        ibgp_routes = [
            r
            for r in routers["a"].rib_in_routes(prefix)
            if r.source is RouteSource.IBGP
        ]
        assert len(ibgp_routes) == 1
        route = ibgp_routes[0]
        assert route.as_path == (30, 40)  # no AS10 prepended
        assert route.next_hop == routers["b"].router_id

    def test_no_ibgp_reflection(self):
        """A router must not re-advertise iBGP-learned routes over iBGP."""
        net = Network()
        a, b, c = (net.add_router(10) for _ in range(3))
        net.ases[10].igp.add_link(a.router_id, b.router_id, 1)
        net.ases[10].igp.add_link(b.router_id, c.router_id, 1)
        # Deliberately NOT a full mesh: a-b and b-c only.
        net.connect(a, b)
        net.connect(b, c)
        origin = net.add_router(20)
        net.connect(a, origin)
        prefix = Prefix("10.2.0.0/24")
        net.originate(origin, prefix)
        simulate(net)
        assert a.best(prefix) is not None
        assert b.best(prefix) is not None  # learned over iBGP from a
        assert c.best(prefix) is None  # b must not reflect it


class TestHotPotato:
    def build(self, cost_near: float, cost_far: float):
        """Internal router chooses between two egress routers by IGP cost."""
        net = Network()
        internal = net.add_router(10)
        egress1 = net.add_router(10)
        egress2 = net.add_router(10)
        node = net.ases[10]
        node.igp.add_link(internal.router_id, egress1.router_id, cost_near)
        node.igp.add_link(internal.router_id, egress2.router_id, cost_far)
        net.ibgp_full_mesh(10)
        up1, up2 = net.add_router(21), net.add_router(22)
        net.connect(egress1, up1)
        net.connect(egress2, up2)
        origin = net.add_router(40)
        net.connect(up1, origin)
        net.connect(up2, origin)
        prefix = Prefix("10.3.0.0/24")
        net.originate(origin, prefix)
        simulate(net)
        return internal, egress1, egress2, prefix

    def test_internal_router_picks_nearest_egress(self):
        internal, egress1, egress2, prefix = self.build(1, 9)
        assert internal.best(prefix).next_hop == egress1.router_id

    def test_hot_potato_flips_with_costs(self):
        internal, egress1, egress2, prefix = self.build(9, 1)
        assert internal.best(prefix).next_hop == egress2.router_id

    def test_tie_falls_through_to_router_id(self):
        internal, egress1, egress2, prefix = self.build(5, 5)
        # equal IGP cost: lowest neighbour router id (egress1) wins
        assert internal.best(prefix).next_hop == egress1.router_id


class TestDiversityAcrossBorderRouters:
    def test_as_propagates_multiple_paths_downstream(self, multi_router_as):
        """AS10's two border routers propagate different AS-paths."""
        net, routers, prefix = multi_router_as
        downstream = net.add_router(50)
        net.connect(routers["a"], downstream)
        net.connect(routers["b"], downstream)
        simulate(net)
        paths = {r.as_path for r in downstream.rib_in_routes(prefix)}
        assert paths == {(10, 20, 40), (10, 30, 40)}
