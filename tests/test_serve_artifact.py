"""Tests for the prediction artifact: compile, round-trip, rejection.

The load-side tests each corrupt one layer of the file format (magic,
header, schema, length, checksum, payload) and assert the artifact
refuses loudly with a distinct message — a stale or damaged artifact
must never answer queries.
"""

import json
import zlib

import pytest

from repro.core.build import build_initial_model
from repro.core.predict import predict_paths
from repro.core.refine import Refiner
from repro.errors import ArtifactError, ModelError
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.serve import (
    MAGIC,
    SCHEMA_VERSION,
    PredictionArtifact,
    build_artifact,
    compile_artifact,
)
from repro.topology.dataset import ObservedRoute, PathDataset

P = Prefix("10.0.0.0/24")


def dataset_from_paths(*paths):
    ds = PathDataset()
    for index, path in enumerate(paths):
        ds.add(ObservedRoute(f"p{index}", path[0], P, ASPath(path)))
    return ds


@pytest.fixture(scope="module")
def refined_model():
    ds = dataset_from_paths((1, 2, 4), (1, 3, 4), (5, 2, 4), (5, 3, 4))
    model = build_initial_model(ds)
    Refiner(model, ds).run()
    return model


@pytest.fixture(scope="module")
def compiled(refined_model):
    return compile_artifact(refined_model)


class TestCompile:
    def test_covers_every_origin_and_observer(self, refined_model, compiled):
        artifact, report = compiled
        assert set(artifact.origins) == set(refined_model.prefix_by_origin)
        assert set(artifact.observers) == set(refined_model.network.ases)
        assert report.prefixes == len(artifact.origins)
        assert report.quarantined == []
        assert report.pairs == artifact.pair_count > 0

    def test_matches_live_prediction_for_every_pair(
        self, refined_model, compiled
    ):
        # The acceptance criterion: artifact answers == live simulation
        # answers for the full (origin, observer) cross product.
        artifact, _ = compiled
        for origin in artifact.origins:
            for observer in artifact.observers:
                live = predict_paths(
                    refined_model, origin, observer, resimulate=False
                )
                frozen = set(artifact.paths.get((origin, observer), ()))
                assert frozen == live, (origin, observer)

    def test_unknown_observer_rejected(self, refined_model):
        with pytest.raises(ModelError, match="999"):
            compile_artifact(refined_model, observers=[1, 999])

    def test_observer_subset_restricts_pairs(self, refined_model):
        artifact, _ = compile_artifact(refined_model, observers=[1])
        assert artifact.observers == (1,)
        assert all(observer == 1 for _, observer in artifact.paths)


class TestRoundTrip:
    def test_save_load_preserves_everything(self, compiled, tmp_path):
        artifact, _ = compiled
        path = tmp_path / "pred.artifact"
        size = artifact.save(path)
        assert size == path.stat().st_size > len(MAGIC)
        loaded = PredictionArtifact.load(path)
        assert loaded.schema == SCHEMA_VERSION
        assert loaded.origins == artifact.origins
        assert loaded.observers == artifact.observers
        assert loaded.paths == artifact.paths
        assert loaded.quarantined == artifact.quarantined
        assert loaded.meta == artifact.meta

    def test_loaded_artifact_equals_live_prediction(
        self, refined_model, compiled, tmp_path
    ):
        artifact, _ = compiled
        path = tmp_path / "pred.artifact"
        artifact.save(path)
        loaded = PredictionArtifact.load(path)
        for origin in loaded.origins:
            for observer in loaded.observers:
                live = predict_paths(refined_model, origin, observer)
                assert set(loaded.paths.get((origin, observer), ())) == live

    def test_meta_stamp_present(self, compiled):
        artifact, _ = compiled
        assert "argv" in artifact.meta
        assert "python" in artifact.meta


class TestRejection:
    @pytest.fixture
    def saved(self, compiled, tmp_path):
        artifact, _ = compiled
        path = tmp_path / "pred.artifact"
        artifact.save(path)
        return path

    def test_wrong_magic(self, saved):
        blob = saved.read_bytes()
        saved.write_bytes(b"NOT-AN-ARTIFACT\n" + blob[len(MAGIC):])
        with pytest.raises(ArtifactError, match="magic"):
            PredictionArtifact.load(saved)

    def test_corrupted_header(self, saved):
        blob = saved.read_bytes()
        header_end = blob.index(b"\n", len(MAGIC)) + 1
        garbage = MAGIC + b"{not json" + blob[header_end:]
        saved.write_bytes(garbage)
        with pytest.raises(ArtifactError, match="header"):
            PredictionArtifact.load(saved)

    def test_wrong_schema_version(self, saved):
        blob = saved.read_bytes()
        header_end = blob.index(b"\n", len(MAGIC))
        header = json.loads(blob[len(MAGIC):header_end])
        header["schema"] = SCHEMA_VERSION + 1
        rewritten = (
            MAGIC
            + json.dumps(header, sort_keys=True).encode("ascii")
            + blob[header_end:]
        )
        saved.write_bytes(rewritten)
        with pytest.raises(ArtifactError, match="schema"):
            PredictionArtifact.load(saved)

    def test_truncated_payload(self, saved):
        blob = saved.read_bytes()
        saved.write_bytes(blob[:-10])
        with pytest.raises(ArtifactError, match="truncated"):
            PredictionArtifact.load(saved)

    def test_flipped_payload_byte(self, saved):
        blob = bytearray(saved.read_bytes())
        blob[-1] ^= 0xFF
        saved.write_bytes(bytes(blob))
        with pytest.raises(ArtifactError, match="checksum"):
            PredictionArtifact.load(saved)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ArtifactError, match="cannot read"):
            PredictionArtifact.load(tmp_path / "nope.artifact")

    def test_undecompressable_payload(self, saved):
        # Valid header and checksum over bytes that are not zlib data.
        import hashlib

        bogus = b"\x00" * 32
        header = {
            "schema": SCHEMA_VERSION,
            "payload_bytes": len(bogus),
            "payload_sha256": hashlib.sha256(bogus).hexdigest(),
        }
        saved.write_bytes(
            MAGIC
            + json.dumps(header, sort_keys=True).encode("ascii")
            + b"\n"
            + bogus
        )
        with pytest.raises(ArtifactError, match="undecodable"):
            PredictionArtifact.load(saved)


class TestBuildArtifact:
    def test_normalises_and_sorts(self):
        artifact = build_artifact(
            origins={4: Prefix("0.4.0.0/24")},
            observers=[2, 1, 1],
            paths={(4, 1): {(1, 3, 4), (1, 2, 4)}, (4, 2): set()},
        )
        assert artifact.observers == (1, 2)
        assert artifact.paths[(4, 1)] == ((1, 2, 4), (1, 3, 4))
        assert (4, 2) not in artifact.paths  # empty sets are dropped

    def test_quarantined_origin_resolution(self):
        prefix = Prefix("0.7.0.0/24")
        artifact = build_artifact(
            origins={7: prefix}, observers=[7], paths={},
            quarantined=[prefix],
        )
        assert artifact.quarantined == (str(prefix),)
        assert artifact.quarantined_origins() == {7}
