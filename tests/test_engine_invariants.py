"""Randomised invariant checks on the engine over synthetic ground truths.

These complement the hypothesis tests: full BGP simulations on seeded
random topologies, asserting the global invariants the substrate must
guarantee (convergence, RIB consistency, loop-freedom, valley-freedom
under pure Gao-Rexford policies).
"""

import dataclasses

import pytest

from repro.bgp import simulate
from repro.bgp.attributes import RouteSource
from repro.data.synthesis import SyntheticConfig, synthesize_internet
from repro.relationships.valleyfree import is_valley_free

BASE = SyntheticConfig(seed=0, n_level1=3, n_level2=5, n_other=8, n_stub=14)


@pytest.fixture(scope="module", params=[1, 2, 3])
def simulated_internet(request):
    config = dataclasses.replace(BASE, seed=request.param)
    internet = synthesize_internet(config)
    simulate(internet.network)
    return internet


class TestConvergenceInvariants:
    def test_converges(self, simulated_internet):
        # reaching here means simulate() did not raise SimulationError
        assert simulated_internet.network.prefixes()

    def test_resimulation_reaches_same_fixed_point(self, simulated_internet):
        net = simulated_internet.network
        prefix = net.prefixes()[0]
        before = {
            rid: (r.best(prefix).as_path if r.best(prefix) else None)
            for rid, r in net.routers.items()
        }
        from repro.bgp import simulate_prefix

        simulate_prefix(net, prefix)
        after = {
            rid: (r.best(prefix).as_path if r.best(prefix) else None)
            for rid, r in net.routers.items()
        }
        assert before == after


class TestRibConsistency:
    def test_best_is_among_candidates(self, simulated_internet):
        net = simulated_internet.network
        for prefix in net.prefixes():
            for router in net.routers.values():
                best = router.best(prefix)
                if best is not None:
                    assert best in router.candidates(prefix)

    def test_no_as_loops_in_any_path(self, simulated_internet):
        net = simulated_internet.network
        for prefix in net.prefixes():
            for router in net.routers.values():
                for route in router.rib_in_routes(prefix):
                    collapsed = [route.as_path[0]] if route.as_path else []
                    for asn in route.as_path[1:]:
                        if collapsed[-1] != asn:
                            collapsed.append(asn)
                    assert len(set(collapsed)) == len(collapsed)
                    if route.source is RouteSource.EBGP:
                        assert router.asn not in route.as_path

    def test_adj_rib_out_consistent_with_best(self, simulated_internet):
        net = simulated_internet.network
        for prefix in net.prefixes():
            for router in net.routers.values():
                best = router.best(prefix)
                rib_out = router.adj_rib_out.get(prefix, {})
                if best is None:
                    assert not rib_out
                for session_id, route in rib_out.items():
                    session = net.sessions[session_id]
                    if session.is_ebgp:
                        assert route.as_path[0] == router.asn

    def test_origin_as_is_path_tail(self, simulated_internet):
        internet = simulated_internet
        net = internet.network
        for prefix in net.prefixes():
            origin = internet.origin_of(prefix)
            for router in net.routers.values():
                best = router.best(prefix)
                if best is None or not best.as_path:
                    continue
                assert best.as_path[-1] == origin


class TestValleyFreedom:
    def test_pure_gao_rexford_ground_truth_is_valley_free(self):
        """Without weird policies every chosen path must be valley-free."""
        config = dataclasses.replace(
            BASE,
            seed=6,
            weird_session_fraction=0.0,
            selective_announce_fraction=0.0,
            prepend_fraction=0.0,
            sibling_pair_count=0,
        )
        internet = synthesize_internet(config)
        simulate(internet.network)
        net = internet.network
        for prefix in net.prefixes():
            origin = internet.origin_of(prefix)
            for router in net.routers.values():
                best = router.best(prefix)
                if best is None or len(best.as_path) < 2:
                    continue
                full_path = (router.asn,) + best.as_path
                assert is_valley_free(full_path, internet.relationships), (
                    f"valley path {full_path} for {prefix} (origin {origin})"
                )

    def test_weird_policies_can_break_valley_freedom(self):
        """With weird local-prefs some non-valley-free path usually appears;
        at minimum the simulation still converges."""
        config = dataclasses.replace(BASE, seed=8, weird_session_fraction=0.3)
        internet = synthesize_internet(config)
        stats = simulate(internet.network)
        assert stats.prefixes > 0
