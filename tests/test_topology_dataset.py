"""Unit tests for repro.topology.dataset."""

import pytest

from repro.errors import DatasetError
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.topology.dataset import ObservedRoute, PathDataset

P1 = Prefix("10.0.0.0/24")
P2 = Prefix("10.0.1.0/24")


def route(point: str, path: tuple[int, ...], prefix=P1) -> ObservedRoute:
    return ObservedRoute(point, path[0], prefix, ASPath(path))


@pytest.fixture
def dataset():
    return PathDataset(
        [
            route("a0", (1, 2, 4)),
            route("a0", (1, 3, 4)),
            route("a0", (1, 2, 5), P2),
            route("b0", (2, 4)),
            route("b1", (2, 3, 4)),
        ]
    )


class TestObservedRoute:
    def test_origin_asn(self):
        assert route("x", (1, 2, 3)).origin_asn == 3

    def test_rejects_empty_path(self):
        with pytest.raises(DatasetError):
            ObservedRoute("x", 1, P1, ASPath(()))

    def test_rejects_path_not_starting_at_observer(self):
        with pytest.raises(DatasetError):
            ObservedRoute("x", 9, P1, ASPath((1, 2)))


class TestViews:
    def test_len_and_iter(self, dataset):
        assert len(dataset) == 5
        assert len(list(dataset)) == 5

    def test_observation_points(self, dataset):
        assert dataset.observation_points() == {"a0": 1, "b0": 2, "b1": 2}

    def test_observer_and_origin_asns(self, dataset):
        assert dataset.observer_asns() == {1, 2}
        assert dataset.origin_asns() == {4, 5}

    def test_prefixes_and_asns(self, dataset):
        assert dataset.prefixes() == {P1, P2}
        assert dataset.all_asns() == {1, 2, 3, 4, 5}

    def test_unique_paths(self, dataset):
        assert (1, 2, 4) in dataset.unique_paths()
        assert len(dataset.unique_paths()) == 5

    def test_paths_by_pair(self, dataset):
        pairs = dataset.paths_by_pair()
        assert pairs[(4, 1)] == {(1, 2, 4), (1, 3, 4)}
        assert pairs[(4, 2)] == {(2, 4), (2, 3, 4)}

    def test_unique_paths_by_origin(self, dataset):
        grouped = dataset.unique_paths_by_origin()
        assert grouped[5] == {(1, 2, 5)}
        assert len(grouped[4]) == 4

    def test_unique_paths_by_prefix(self, dataset):
        grouped = dataset.unique_paths_by_prefix()
        assert grouped[P2] == {(1, 2, 5)}

    def test_adjacencies(self, dataset):
        assert (1, 2) in dataset.adjacencies()
        assert (2, 4) in dataset.adjacencies()

    def test_summary_counts(self, dataset):
        summary = dataset.summary()
        assert summary["routes"] == 5
        assert summary["observation_points"] == 3
        assert summary["unique_paths"] == 5


class TestTransformations:
    def test_cleaned_removes_prepending(self):
        ds = PathDataset([route("a0", (1, 2, 2, 4))])
        cleaned = ds.cleaned()
        assert cleaned.unique_paths() == {(1, 2, 4)}

    def test_cleaned_drops_loops(self):
        ds = PathDataset([route("a0", (1, 2, 3, 2, 4))])
        assert len(ds.cleaned()) == 0

    def test_cleaned_deduplicates(self):
        ds = PathDataset([route("a0", (1, 2, 4)), route("a0", (1, 2, 2, 4))])
        assert len(ds.cleaned()) == 1

    def test_restrict_points(self, dataset):
        subset = dataset.restrict_points({"a0"})
        assert subset.observer_asns() == {1}
        assert len(subset) == 3

    def test_restrict_origins(self, dataset):
        subset = dataset.restrict_origins({5})
        assert len(subset) == 1
        assert subset.origin_asns() == {5}

    def test_map_paths_drops_none(self, dataset):
        mapped = dataset.map_paths(
            lambda r: r.path if r.origin_asn == 4 else None
        )
        assert mapped.origin_asns() == {4}

    def test_filter_routes(self, dataset):
        subset = dataset.filter_routes(lambda r: len(r.path) == 2)
        assert len(subset) == 1
