"""Unit tests for the metrics registry (repro.obs.metrics)."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)


class TestInstruments:
    def test_counter_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_gauge_last_write_wins(self):
        gauge = Gauge("g")
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5

    def test_histogram_percentiles_are_order_statistics(self):
        histogram = Histogram("h")
        for value in range(1, 101):
            histogram.observe(value)
        assert histogram.percentile(50) == 50
        assert histogram.percentile(95) == 95
        assert histogram.percentile(99) == 99
        assert histogram.percentile(100) == 100
        assert histogram.percentile(0) == 1

    def test_histogram_summary(self):
        histogram = Histogram("h")
        for value in (4.0, 1.0, 3.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 3
        assert summary["sum"] == 8.0
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0
        assert summary["p50"] == 3.0

    def test_empty_histogram(self):
        histogram = Histogram("h")
        assert histogram.summary() == {"count": 0}
        assert histogram.percentile(50) == 0.0

    def test_percentile_out_of_range(self):
        histogram = Histogram("h")
        histogram.observe(1)
        with pytest.raises(ValueError):
            histogram.percentile(101)


class TestRegistry:
    def test_instruments_created_on_first_use(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_snapshot_is_sorted_and_serialisable(self):
        registry = MetricsRegistry()
        registry.counter("z").inc(2)
        registry.counter("a").inc()
        registry.gauge("rate").set(0.5)
        registry.histogram("lat").observe(1.0)
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["a", "z"]
        assert snapshot["counters"]["z"] == 2
        assert snapshot["gauges"]["rate"] == 0.5
        assert snapshot["histograms"]["lat"]["count"] == 1

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        assert bool(registry)
        registry.reset()
        assert not registry
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_global_registry_swap_and_restore(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(previous)
        assert get_registry() is previous
