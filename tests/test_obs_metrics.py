"""Unit tests for the metrics registry (repro.obs.metrics)."""

import threading

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    labelled,
    render_prometheus,
    set_registry,
)


class TestInstruments:
    def test_counter_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_gauge_last_write_wins(self):
        gauge = Gauge("g")
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5

    def test_histogram_percentiles_are_order_statistics(self):
        histogram = Histogram("h")
        for value in range(1, 101):
            histogram.observe(value)
        assert histogram.percentile(50) == 50
        assert histogram.percentile(95) == 95
        assert histogram.percentile(99) == 99
        assert histogram.percentile(100) == 100
        assert histogram.percentile(0) == 1

    def test_histogram_summary(self):
        histogram = Histogram("h")
        for value in (4.0, 1.0, 3.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 3
        assert summary["sum"] == 8.0
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0
        assert summary["p50"] == 3.0

    def test_empty_histogram(self):
        histogram = Histogram("h")
        assert histogram.summary() == {"count": 0}
        assert histogram.percentile(50) == 0.0

    def test_percentile_out_of_range(self):
        histogram = Histogram("h")
        histogram.observe(1)
        with pytest.raises(ValueError):
            histogram.percentile(101)

    def test_percentile_out_of_range_raises_even_when_empty(self):
        histogram = Histogram("h")
        with pytest.raises(ValueError):
            histogram.percentile(-1)
        with pytest.raises(ValueError):
            histogram.percentile(100.5)

    def test_percentile_single_sample(self):
        histogram = Histogram("h")
        histogram.observe(7.5)
        assert histogram.percentile(0) == 7.5
        assert histogram.percentile(50) == 7.5
        assert histogram.percentile(100) == 7.5


class TestHistogramReservoir:
    def test_memory_is_bounded_but_scalars_stay_exact(self):
        histogram = Histogram("h", reservoir_size=100)
        total = 0
        for value in range(1, 10_001):
            histogram.observe(value)
            total += value
        assert len(histogram._reservoir) == 100
        assert histogram.count == 10_000
        assert histogram.total == float(total)
        summary = histogram.summary()
        assert summary["count"] == 10_000
        assert summary["sum"] == float(total)
        assert summary["min"] == 1.0
        assert summary["max"] == 10_000.0

    def test_percentiles_within_tolerance_after_sampling(self):
        histogram = Histogram("h", reservoir_size=512)
        for value in range(10_000):
            histogram.observe(value)
        # A uniform 512-sample reservoir over uniform data: the estimated
        # p50 should land well inside the central half of the range.
        assert 3_000 <= histogram.percentile(50) <= 7_000
        assert histogram.percentile(95) >= 8_000
        assert histogram.percentile(5) <= 2_000

    def test_exact_while_under_the_bound(self):
        histogram = Histogram("h", reservoir_size=1000)
        for value in range(1, 101):
            histogram.observe(value)
        assert histogram.percentile(50) == 50
        assert histogram.percentile(99) == 99

    def test_deterministic_for_a_given_name(self):
        a = Histogram("same-name", reservoir_size=32)
        b = Histogram("same-name", reservoir_size=32)
        for value in range(5_000):
            a.observe(value)
            b.observe(value)
        assert a.summary() == b.summary()

    def test_rejects_nonpositive_reservoir(self):
        with pytest.raises(ValueError):
            Histogram("h", reservoir_size=0)

    def test_dump_and_merge_preserve_scalars(self):
        source = Histogram("h", reservoir_size=64)
        for value in range(1, 1_001):
            source.observe(value)
        target = Histogram("h", reservoir_size=64)
        target.observe(5_000.0)
        target.merge_raw(source.dump_raw())
        assert target.count == 1_001
        assert target.total == sum(range(1, 1_001)) + 5_000.0
        assert target.summary()["min"] == 1.0
        assert target.summary()["max"] == 5_000.0

    def test_merge_accepts_legacy_value_lists(self):
        histogram = Histogram("h")
        histogram.merge_raw([1.0, 2.0, 3.0])
        assert histogram.count == 3
        assert histogram.total == 6.0
        assert histogram.summary()["max"] == 3.0


class TestThreadSafety:
    def test_concurrent_observes_keep_count_and_sum_exact(self):
        histogram = Histogram("h", reservoir_size=128)
        per_thread, threads = 2_000, 8

        def worker():
            for _ in range(per_thread):
                histogram.observe(1.0)

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert histogram.count == per_thread * threads
        assert histogram.total == float(per_thread * threads)
        assert len(histogram._reservoir) == 128

    def test_concurrent_counter_increments_are_exact(self):
        counter = Counter("c")
        per_thread, threads = 5_000, 8

        def worker():
            for _ in range(per_thread):
                counter.inc()

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert counter.value == per_thread * threads

    def test_concurrent_first_use_lands_on_one_instrument(self):
        registry = MetricsRegistry()
        seen = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            seen.append(registry.histogram("contended"))

        pool = [threading.Thread(target=worker) for _ in range(8)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert all(instrument is seen[0] for instrument in seen)


class TestPrometheusExposition:
    def test_counters_gauges_histograms_render(self):
        registry = MetricsRegistry()
        registry.counter("engine.messages").inc(7)
        registry.gauge("refine.match_rate").set(0.75)
        for value in (1.0, 2.0, 3.0):
            registry.histogram("serve.request_seconds").observe(value)
        text = render_prometheus(registry)
        assert "# TYPE repro_engine_messages_total counter" in text
        assert "repro_engine_messages_total 7" in text
        assert "repro_refine_match_rate 0.75" in text
        assert "# TYPE repro_serve_request_seconds summary" in text
        assert 'repro_serve_request_seconds{quantile="0.5"} 2' in text
        assert "repro_serve_request_seconds_sum 6" in text
        assert "repro_serve_request_seconds_count 3" in text
        assert text.endswith("\n")

    def test_labelled_names_become_prometheus_labels(self):
        registry = MetricsRegistry()
        registry.counter(labelled("ingest.quarantined", reason="as-set")).inc(2)
        registry.counter(labelled("ingest.quarantined", reason="loop")).inc(1)
        text = render_prometheus(registry)
        assert text.count("# TYPE repro_ingest_quarantined_total counter") == 1
        assert 'repro_ingest_quarantined_total{reason="as-set"} 2' in text
        assert 'repro_ingest_quarantined_total{reason="loop"} 1' in text

    def test_names_are_sanitised(self):
        registry = MetricsRegistry()
        registry.counter("engine.route-map").inc()
        text = render_prometheus(registry)
        assert "repro_engine_route_map_total 1" in text


class TestRegistry:
    def test_instruments_created_on_first_use(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_snapshot_is_sorted_and_serialisable(self):
        registry = MetricsRegistry()
        registry.counter("z").inc(2)
        registry.counter("a").inc()
        registry.gauge("rate").set(0.5)
        registry.histogram("lat").observe(1.0)
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["a", "z"]
        assert snapshot["counters"]["z"] == 2
        assert snapshot["gauges"]["rate"] == 0.5
        assert snapshot["histograms"]["lat"]["count"] == 1

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        assert bool(registry)
        registry.reset()
        assert not registry
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_global_registry_swap_and_restore(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(previous)
        assert get_registry() is previous
