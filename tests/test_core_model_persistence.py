"""Tests for saving/loading a refined model via the C-BGP config format."""

import io

import pytest

from repro.cbgp import export_model, parse_script
from repro.core.build import build_initial_model
from repro.core.model import ASRoutingModel
from repro.core.predict import evaluate_model
from repro.core.refine import Refiner
from repro.errors import TopologyError
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.topology.dataset import ObservedRoute, PathDataset

P = Prefix("10.0.0.0/24")


def dataset_from_paths(*paths):
    ds = PathDataset()
    for index, path in enumerate(paths):
        ds.add(ObservedRoute(f"p{index}", path[0], P, ASPath(path)))
    return ds


class TestFromNetwork:
    def test_reconstructs_graph_and_origins(self):
        ds = dataset_from_paths((1, 2, 4), (1, 3, 4))
        model = build_initial_model(ds)
        buffer = io.StringIO()
        export_model(model, buffer)
        network = parse_script(io.StringIO(buffer.getvalue()))
        loaded = ASRoutingModel.from_network(network)
        assert loaded.graph.ases() == model.graph.ases()
        assert set(loaded.graph.edges()) == set(model.graph.edges())
        assert loaded.prefix_by_origin == model.prefix_by_origin

    def test_loaded_model_evaluates_identically(self):
        ds = dataset_from_paths((1, 2, 4), (1, 3, 4), (2, 4), (3, 4))
        model = build_initial_model(ds)
        Refiner(model, ds).run()
        original = evaluate_model(model, ds)

        buffer = io.StringIO()
        export_model(model, buffer)
        loaded = ASRoutingModel.from_network(
            parse_script(io.StringIO(buffer.getvalue()))
        )
        reloaded = evaluate_model(loaded, ds)
        assert reloaded.counts == original.counts

    def test_rejects_prefix_without_known_origin(self):
        from repro.bgp.network import Network

        network = Network()
        router = network.add_router(5)
        network.originate(router, Prefix("99.99.0.0/24"))  # encodes ASN 25443
        with pytest.raises(TopologyError):
            ASRoutingModel.from_network(network)

    def test_mini_refined_model_round_trips(self, mini_pipeline):
        from repro.core.split import split_by_observation_points

        pruned = mini_pipeline["pruned"]
        training, validation = split_by_observation_points(
            pruned.dataset, 0.5, seed=5
        )
        model = build_initial_model(pruned.dataset, pruned.graph.copy())
        Refiner(model, training).run()
        buffer = io.StringIO()
        export_model(model, buffer)
        loaded = ASRoutingModel.from_network(
            parse_script(io.StringIO(buffer.getvalue()))
        )
        assert loaded.network.stats() == model.network.stats()
        original = evaluate_model(model, validation)
        reloaded = evaluate_model(loaded, validation)
        assert reloaded.counts == original.counts
