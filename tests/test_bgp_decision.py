"""Unit tests for the BGP decision process (repro.bgp.decision)."""

from repro.bgp.attributes import Origin, RouteSource
from repro.bgp.decision import DecisionConfig, Step, run_decision
from repro.bgp.route import Route
from repro.net.prefix import Prefix

PREFIX = Prefix("10.0.0.0/24")


def make_route(**kwargs):
    defaults = dict(
        prefix=PREFIX,
        as_path=(1, 2),
        next_hop=1,
        peer_router=100,
        peer_asn=1,
    )
    defaults.update(kwargs)
    return Route(**defaults)


class TestIndividualSteps:
    def test_empty_candidates(self):
        outcome = run_decision([])
        assert outcome.best is None

    def test_single_candidate_wins(self):
        route = make_route()
        assert run_decision([route]).best is route

    def test_local_pref_wins_over_shorter_path(self):
        low = make_route(as_path=(1,), local_pref=80)
        high = make_route(as_path=(1, 2, 3), local_pref=120)
        outcome = run_decision([low, high])
        assert outcome.best is high
        assert outcome.elimination_step(low) is Step.LOCAL_PREF

    def test_shorter_path_wins(self):
        short = make_route(as_path=(1, 2))
        long = make_route(as_path=(1, 2, 3))
        outcome = run_decision([long, short])
        assert outcome.best is short
        assert outcome.elimination_step(long) is Step.PATH_LENGTH

    def test_origin_ranks_igp_first(self):
        igp = make_route(origin=Origin.IGP)
        incomplete = make_route(origin=Origin.INCOMPLETE)
        outcome = run_decision([incomplete, igp])
        assert outcome.best is igp
        assert outcome.elimination_step(incomplete) is Step.ORIGIN

    def test_local_route_beats_ebgp(self):
        local = Route.originate(PREFIX, 5)
        ebgp = make_route(as_path=())  # same length as local
        outcome = run_decision([ebgp, local])
        assert outcome.best is local

    def test_ebgp_beats_ibgp(self):
        ebgp = make_route(source=RouteSource.EBGP)
        ibgp = make_route(source=RouteSource.IBGP, peer_router=99)
        outcome = run_decision([ibgp, ebgp])
        assert outcome.best is ebgp
        assert outcome.elimination_step(ibgp) is Step.EBGP_OVER_IBGP

    def test_igp_cost_breaks_ibgp_tie(self):
        near = make_route(source=RouteSource.IBGP, next_hop=1, peer_router=201)
        far = make_route(source=RouteSource.IBGP, next_hop=2, peer_router=200)
        costs = {1: 1.0, 2: 9.0}
        outcome = run_decision(
            [far, near], igp_cost=lambda route: costs[route.next_hop]
        )
        assert outcome.best is near
        assert outcome.elimination_step(far) is Step.IGP_COST

    def test_igp_cost_step_disabled(self):
        near = make_route(source=RouteSource.IBGP, next_hop=1, peer_router=201)
        far = make_route(source=RouteSource.IBGP, next_hop=2, peer_router=200)
        costs = {1: 1.0, 2: 9.0}
        outcome = run_decision(
            [far, near],
            DecisionConfig(use_igp_cost=False),
            igp_cost=lambda route: costs[route.next_hop],
        )
        # falls through to router-id: far has the lower peer_router
        assert outcome.best is far

    def test_router_id_final_tie_break(self):
        low = make_route(peer_router=100)
        high = make_route(peer_router=200)
        outcome = run_decision([high, low])
        assert outcome.best is low
        assert outcome.elimination_step(high) is Step.ROUTER_ID


class TestMedSemantics:
    def test_med_compared_within_neighbor_as(self):
        cheap = make_route(med=5, peer_asn=7, peer_router=300)
        dear = make_route(med=9, peer_asn=7, peer_router=200)
        outcome = run_decision([dear, cheap])
        assert outcome.best is cheap
        assert outcome.elimination_step(dear) is Step.MED

    def test_med_not_compared_across_neighbors_by_default(self):
        route_a = make_route(med=5, peer_asn=7, peer_router=300)
        route_b = make_route(med=9, peer_asn=8, peer_router=200)
        outcome = run_decision([route_a, route_b])
        # both survive MED; router-id picks the lower peer_router
        assert outcome.best is route_b
        assert outcome.elimination_step(route_a) is Step.ROUTER_ID

    def test_med_always_compare(self):
        route_a = make_route(med=5, peer_asn=7, peer_router=300)
        route_b = make_route(med=9, peer_asn=8, peer_router=200)
        outcome = run_decision(
            [route_a, route_b], DecisionConfig(med_always_compare=True)
        )
        assert outcome.best is route_a
        assert outcome.elimination_step(route_b) is Step.MED

    def test_med_groups_keep_per_group_minimum(self):
        a1 = make_route(med=5, peer_asn=7, peer_router=101)
        a2 = make_route(med=9, peer_asn=7, peer_router=102)
        b1 = make_route(med=7, peer_asn=8, peer_router=103)
        outcome = run_decision([a1, a2, b1])
        assert outcome.elimination_step(a2) is Step.MED
        assert outcome.elimination_step(b1) in (None, Step.ROUTER_ID)


class TestOutcomeIntrospection:
    def test_survivors_until(self):
        short = make_route(as_path=(1,), peer_router=100)
        long = make_route(as_path=(1, 2), peer_router=200)
        tied = make_route(as_path=(1,), peer_router=300)
        outcome = run_decision([short, long, tied])
        alive_at_med = outcome.survivors_until(Step.MED)
        assert long not in alive_at_med
        assert short in alive_at_med and tied in alive_at_med

    def test_best_not_in_eliminated(self):
        routes = [make_route(peer_router=n) for n in (300, 100, 200)]
        outcome = run_decision(routes)
        assert outcome.elimination_step(outcome.best) is None
        assert len(outcome.eliminated) == 2

    def test_every_loser_has_a_step(self):
        routes = [
            make_route(as_path=(1,), peer_router=100),
            make_route(as_path=(1, 2), peer_router=50, local_pref=90),
            make_route(as_path=(1,), peer_router=200, med=3),
        ]
        outcome = run_decision(routes, DecisionConfig(med_always_compare=True))
        for route in routes:
            if route is not outcome.best:
                assert outcome.elimination_step(route) is not None
