"""Tests for RunHealth reporting, the chaos pipeline, and the CLI wiring."""

import json
from types import SimpleNamespace

from repro.cli import main
from repro.experiments.chaos import ChaosConfig, run_chaos
from repro.net.prefix import Prefix
from repro.resilience.faults import FaultConfig
from repro.resilience.health import (
    EXIT_DATA,
    EXIT_DIVERGED,
    EXIT_OK,
    EXIT_UNCONVERGED,
    UNMATCHED_LIMIT,
    RunHealth,
)
from repro.resilience.retry import DIVERGED, PrefixOutcome, ResilienceStats, RetryPolicy

FAST_CHAOS = ChaosConfig(
    seed=0,
    scale=0.12,
    points=6,
    refine_iterations=4,
    faults=FaultConfig(
        seed=0,
        dispute_wheels=2,
        corrupt_line_fraction=0.1,
        truncate_line_fraction=0.05,
        session_flaps=1,
    ),
    retry=RetryPolicy(
        max_attempts=2, initial_budget=2000, budget_cap=20_000, deadline_seconds=10.0
    ),
)


def diverged_stats(prefix: Prefix) -> ResilienceStats:
    outcome = PrefixOutcome(prefix, DIVERGED, 2, 4000, 2000, 0.1)
    return ResilienceStats(outcomes=[outcome])


def refinement_result(converged: bool) -> SimpleNamespace:
    return SimpleNamespace(
        iteration_count=4, converged=converged, final_match_rate=0.75
    )


class TestRunHealth:
    def test_clean_run_is_exit_ok(self):
        health = RunHealth()
        health.record_refinement(refinement_result(converged=True))
        assert health.exit_code == EXIT_OK
        assert health.diverged_prefixes == []

    def test_stall_is_exit_unconverged(self):
        health = RunHealth()
        health.record_refinement(refinement_result(converged=False))
        assert health.exit_code == EXIT_UNCONVERGED

    def test_divergence_outranks_stall(self):
        health = RunHealth()
        health.record_refinement(refinement_result(converged=False))
        health.record_simulation(diverged_stats(Prefix("10.0.0.0/24")))
        assert health.diverged_prefixes == ["10.0.0.0/24"]
        assert health.exit_code == EXIT_DIVERGED

    def test_errors_outrank_everything(self):
        health = RunHealth()
        health.record_simulation(diverged_stats(Prefix("10.0.0.0/24")))
        health.record_error("dump is mostly garbage")
        assert health.exit_code == EXIT_DATA

    def test_phase_timer_accumulates(self):
        health = RunHealth()
        with health.phase("parse"):
            pass
        first = health.phases["parse"]
        with health.phase("parse"):
            pass
        assert health.phases["parse"] >= first
        assert set(health.phases) == {"parse"}

    def test_phase_records_even_on_exception(self):
        health = RunHealth()
        try:
            with health.phase("refine"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert "refine" in health.phases

    def test_unmatched_diagnostics_truncated_but_counted(self):
        health = RunHealth()
        unmatched = [(asn, (asn, 99)) for asn in range(UNMATCHED_LIMIT + 10)]
        health.record_refinement(refinement_result(converged=False), unmatched)
        assert health.refinement["unmatched_total"] == UNMATCHED_LIMIT + 10
        assert len(health.refinement["unmatched"]) == UNMATCHED_LIMIT
        assert health.refinement["unmatched"][0] == {"origin": 0, "path": [0, 99]}

    def test_report_is_json_and_written(self, tmp_path):
        health = RunHealth()
        health.record_simulation(diverged_stats(Prefix("10.0.0.0/24")))
        path = tmp_path / "health.json"
        health.write(path)
        document = json.loads(path.read_text())
        assert document == health.to_dict()
        assert document["exit_code"] == EXIT_DIVERGED
        assert document["simulation"]["diverged"] == ["10.0.0.0/24"]


class TestExitCodeEdgeCases:
    def test_empty_health_is_exit_ok(self):
        health = RunHealth()
        assert health.exit_code == EXIT_OK
        assert health.diverged_prefixes == []

    def test_unsafe_only_prefixes_map_to_diverged(self):
        health = RunHealth()
        outcome = PrefixOutcome.gated(Prefix("10.0.0.0/24"))
        health.record_simulation(ResilienceStats(outcomes=[outcome]))
        assert health.diverged_prefixes == ["10.0.0.0/24"]
        assert health.exit_code == EXIT_DIVERGED

    def test_divergence_outranks_converged_refinement(self):
        health = RunHealth()
        health.record_refinement(refinement_result(converged=True))
        health.record_simulation(diverged_stats(Prefix("10.0.0.0/24")))
        assert health.exit_code == EXIT_DIVERGED

    def test_clean_simulation_keeps_exit_ok(self):
        health = RunHealth()
        health.record_simulation(ResilienceStats())
        assert health.exit_code == EXIT_OK

    def test_error_outranks_divergence_even_recorded_later(self):
        health = RunHealth()
        health.record_error(RuntimeError("boom"))
        health.record_simulation(diverged_stats(Prefix("10.0.0.0/24")))
        assert health.exit_code == EXIT_DATA
        assert health.to_dict()["errors"] == ["boom"]

    def test_metrics_and_meta_default_and_serialise(self):
        health = RunHealth()
        health.record_metrics()  # defaults to the global registry
        health.record_meta()  # defaults to run_metadata()
        document = health.to_dict()
        assert set(document["metrics"]) == {"counters", "gauges", "histograms"}
        assert document["meta"]["repro_version"]
        assert isinstance(document["meta"]["argv"], list)


class TestChaosPipeline:
    def test_faulted_run_quarantines_and_reports(self):
        health = run_chaos(FAST_CHAOS)
        document = health.to_dict()
        # a wheel diverged: quarantined after bounded retries, named in the report
        assert health.exit_code == EXIT_DIVERGED
        assert health.diverged_prefixes
        for outcome in document["simulation"]["outcomes"]:
            if outcome["status"] == "diverged":
                assert outcome["attempts"] <= FAST_CHAOS.retry.max_attempts
        # dump corruption surfaced as parse skips, not a crash
        assert document["faults"]["corrupted_lines"] > 0
        assert document["parse"]["skipped_malformed"] >= document["faults"][
            "corrupted_lines"
        ]
        # every phase ran and was timed
        assert set(document["phases_seconds"]) == {
            "synthesize", "inject-faults", "simulate", "dump", "parse", "refine",
        }
        assert document["refinement"] is not None
        assert document["errors"] == []

    def test_chaos_is_deterministic(self):
        first = run_chaos(FAST_CHAOS)
        second = run_chaos(FAST_CHAOS)
        assert first.diverged_prefixes == second.diverged_prefixes
        assert first.to_dict()["parse"] == second.to_dict()["parse"]
        assert first.to_dict()["faults"] == second.to_dict()["faults"]

    def test_total_corruption_is_a_data_error(self):
        config = ChaosConfig(
            seed=0,
            scale=0.12,
            points=6,
            faults=FaultConfig(seed=0, corrupt_line_fraction=1.0),
            retry=FAST_CHAOS.retry,
        )
        health = run_chaos(config)
        assert health.exit_code == EXIT_DATA
        assert health.errors
        assert health.to_dict()["refinement"] is None


class TestCLI:
    def test_chaos_subcommand_writes_health_report(self, tmp_path, capsys):
        report = tmp_path / "health.json"
        code = main([
            "chaos", "--seed", "0", "--scale", "0.12", "--points", "6",
            "--refine-iterations", "4", "--retry-attempts", "2",
            "--flap-sessions", "1", "--message-budget", "2000",
            "--health-report", str(report),
        ])
        assert code == EXIT_DIVERGED
        document = json.loads(report.read_text())
        assert document["exit_code"] == EXIT_DIVERGED
        assert document["simulation"]["diverged"]
        assert "chaos:" in capsys.readouterr().err

    def test_chaos_without_report_prints_json(self, capsys):
        code = main([
            "chaos", "--seed", "2", "--scale", "0.12", "--points", "6",
            "--refine-iterations", "10", "--retry-attempts", "2",
            "--dispute-wheels", "0", "--flap-sessions", "0",
            "--corrupt-fraction", "0", "--truncate-fraction", "0",
        ])
        assert code == EXIT_OK
        document = json.loads(capsys.readouterr().out)
        assert document["simulation"]["diverged"] == []

    def test_refine_health_report_and_checkpoint(self, tmp_path, capsys):
        dump = tmp_path / "dump.txt"
        code = main([
            "synthesize", "--seed", "7", "--scale", "0.12", "--points", "6",
            "--out", str(dump),
        ])
        assert code == 0
        capsys.readouterr()
        report = tmp_path / "health.json"
        checkpoint = tmp_path / "refine.ckpt"
        code = main([
            "refine", str(dump), "--max-iterations", "6",
            "--retry-attempts", "2", "--checkpoint", str(checkpoint),
            "--health-report", str(report),
        ])
        assert code == EXIT_OK
        assert checkpoint.exists()
        document = json.loads(report.read_text())
        assert document["refinement"]["converged"] is True
        assert document["exit_code"] == EXIT_OK
        assert {"parse", "refine", "evaluate"} <= set(document["phases_seconds"])

    def test_refine_corrupt_checkpoint_is_exit_data(self, tmp_path, capsys):
        dump = tmp_path / "dump.txt"
        assert main([
            "synthesize", "--seed", "7", "--scale", "0.12", "--points", "6",
            "--out", str(dump),
        ]) == 0
        bad = tmp_path / "bad.ckpt"
        bad.write_text("{not json")
        report = tmp_path / "health.json"
        code = main([
            "refine", str(dump), "--checkpoint", str(bad),
            "--health-report", str(report),
        ])
        assert code == EXIT_DATA
        captured = capsys.readouterr()
        assert "error:" in captured.err
        assert json.loads(report.read_text())["errors"]

    def test_refine_unusable_dump_is_exit_data(self, tmp_path, capsys):
        dump = tmp_path / "garbage.txt"
        dump.write_text("garbage|line\n" * 20)
        report = tmp_path / "health.json"
        code = main(["refine", str(dump), "--health-report", str(report)])
        assert code == EXIT_DATA
        document = json.loads(report.read_text())
        assert document["exit_code"] == EXIT_DATA
        assert document["errors"]
