"""End-to-end tests for ``repro campaign``.

Covers the acceptance criteria at the CLI surface: the full depeer sweep
over a synthetic fixture ranks identically for ``--workers 1`` and
``--workers 4``, usage errors exit 2 naming the problem, and a
SIGTERM'd campaign resumes from its checkpoint to a bit-identical
report (the PR-6 subprocess pattern).
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import main

pytestmark = pytest.mark.timeout(600)


@pytest.fixture(scope="module")
def fixture_dir(tmp_path_factory):
    """Synthetic dump, refined model and compiled baseline artifact."""
    path = tmp_path_factory.mktemp("campaign")
    assert main(
        ["synthesize", "--seed", "5", "--scale", "0.2", "--points", "12",
         "--out", str(path / "snap.dump")]
    ) == 0
    assert main(
        ["refine", str(path / "snap.dump"), "--out", str(path / "model.cbgp")]
    ) == 0
    assert main(
        ["compile-artifact", str(path / "model.cbgp"),
         "--out", str(path / "pred.artifact")]
    ) == 0
    return path


def campaign(fixture_dir, *extra):
    return main(
        ["campaign", *extra[:1], str(fixture_dir / "model.cbgp"),
         "--baseline", str(fixture_dir / "pred.artifact"), *extra[1:]]
    )


class TestCampaignCli:
    def test_depeer_smoke_ranks_and_exits_zero(self, fixture_dir, capsys):
        code = campaign(fixture_dir, "depeer", "--max-scenarios", "3")
        captured = capsys.readouterr()
        assert code == 0
        assert "campaign depeer: 3 scenario(s), 3 completed" in captured.out
        assert "blast" in captured.out
        assert "dropped by --max-scenarios" in captured.err

    def test_workers_report_bit_identical_to_sequential(
        self, fixture_dir, capsys
    ):
        assert campaign(
            fixture_dir, "depeer", "--max-scenarios", "4", "--json"
        ) == 0
        sequential = json.loads(capsys.readouterr().out)
        assert campaign(
            fixture_dir, "depeer", "--max-scenarios", "4", "--json",
            "--workers", "4",
        ) == 0
        parallel = json.loads(capsys.readouterr().out)
        sequential.pop("meta")
        parallel.pop("meta")
        assert parallel == sequential

    def test_report_file_written(self, fixture_dir, tmp_path, capsys):
        report = tmp_path / "campaign.json"
        assert campaign(
            fixture_dir, "depeer", "--max-scenarios", "2",
            "--report", str(report),
        ) == 0
        capsys.readouterr()
        document = json.loads(report.read_text())
        assert document["kind"] == "depeer"
        assert document["counts"]["scenarios"] == 2
        assert "meta" in document

    def test_hijack_requires_victim(self, fixture_dir, capsys):
        code = campaign(fixture_dir, "hijack")
        assert code == 2
        assert "--victim" in capsys.readouterr().err

    def test_catchment_requires_two_sites(self, fixture_dir, capsys):
        code = campaign(fixture_dir, "catchment", "--sites", "10")
        assert code == 2
        assert "at least 2" in capsys.readouterr().err

    def test_unknown_as_is_usage_error_naming_it(self, fixture_dir, capsys):
        code = campaign(fixture_dir, "depeer", "--ases", "64999")
        assert code == 2
        assert "AS 64999" in capsys.readouterr().err

    def test_missing_model_is_data_error(self, tmp_path, capsys):
        code = main(["campaign", "depeer", str(tmp_path / "nope.cbgp")])
        assert code == 4
        assert "error:" in capsys.readouterr().err

    def test_hijack_reports_capture(self, fixture_dir, capsys):
        code = campaign(
            fixture_dir, "hijack", "--victim", "10",
            "--attackers", "100", "--json",
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        scenario = document["scenarios"][0]
        assert scenario["key"] == "hijack:AS100->AS10"
        assert scenario["detail"]["capture_fraction"] > 0


class TestSigtermResume:
    """Acceptance: SIGTERM mid-campaign, then --resume, equals uninterrupted."""

    def _spawn(self, args):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        return subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "campaign", *args],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

    def test_sigterm_then_resume_matches_uninterrupted(
        self, fixture_dir, tmp_path
    ):
        base_args = [
            "depeer", str(fixture_dir / "model.cbgp"),
            "--baseline", str(fixture_dir / "pred.artifact"),
            "--max-scenarios", "8",
        ]

        # Baseline: uninterrupted run.
        process = self._spawn(
            [*base_args, "--report", str(tmp_path / "base.json"),
             "--checkpoint", str(tmp_path / "base.ckpt")]
        )
        assert process.wait(timeout=300) == 0

        # Interrupted run: SIGTERM once the first checkpoint write lands.
        ckpt = tmp_path / "run.ckpt"
        run_args = [
            *base_args, "--report", str(tmp_path / "run.json"),
            "--checkpoint", str(ckpt),
        ]
        process = self._spawn(run_args)
        try:
            deadline = time.time() + 120
            while not ckpt.exists() and time.time() < deadline:
                time.sleep(0.01)
                if process.poll() is not None:
                    break
            assert ckpt.exists(), "no checkpoint appeared before the deadline"
            if process.poll() is None:
                process.send_signal(signal.SIGTERM)
            code = process.wait(timeout=120)
        finally:
            if process.poll() is None:
                process.kill()
        if code == 5:
            partial = json.loads(ckpt.read_text())
            assert 0 < len(partial["completed"]) < 8
        else:
            # The race is legal: the campaign may have finished before
            # the signal landed; the resume still has to be a no-op.
            assert code == 0

        # Resume and compare against the baseline.
        process = self._spawn([*run_args, "--resume"])
        assert process.wait(timeout=300) == 0
        resumed = json.loads((tmp_path / "run.json").read_text())
        base = json.loads((tmp_path / "base.json").read_text())
        assert resumed["meta"]["resumed"] > 0 or code == 0
        resumed.pop("meta")
        base.pop("meta")
        assert resumed == base
