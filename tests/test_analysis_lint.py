"""Tests for the policy-lint and topology-lint passes and the report API."""

import json

import pytest

from repro.analysis import analyze_network
from repro.analysis.findings import AnalysisReport, Finding, Severity
from repro.analysis.policy_lint import (
    RULE_BLOCKING_FILTER,
    RULE_CONTRADICTORY,
    RULE_SHADOWED,
    RULE_STALE_REFINE,
    RULE_UNSATISFIABLE,
    analyze_policies,
)
from repro.analysis.topology_lint import (
    RULE_ISOLATED,
    RULE_REDUNDANT,
    RULE_UNREACHABLE,
    analyze_topology,
)
from repro.bgp.network import Network
from repro.bgp.policy import Action, Clause, Match
from repro.core.refine import FILTER_TAG
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix, prefix_for_asn
from repro.topology.dataset import ObservedRoute, PathDataset


def line_network():
    """AS1 -- AS2, with AS2 originating its canonical prefix."""
    net = Network("line")
    one = net.add_router(1)
    two = net.add_router(2)
    net.connect(one, two)
    prefix = prefix_for_asn(2)
    net.originate(two, prefix)
    return net, one, two, prefix


class TestShadowedClauses:
    def test_generic_clause_shadows_later_prefix_clause(self):
        net, one, two, prefix = line_network()
        imports = net.get_session(two, one).ensure_import_map()
        imports.append(Clause(Match(), Action.DENY))
        imports.append(Clause(Match(prefix=prefix), Action.PERMIT))
        findings = analyze_policies(net)
        shadowed = [f for f in findings if f.rule == RULE_SHADOWED]
        assert len(shadowed) == 1
        assert shadowed[0].prefix == prefix
        assert "clause #1" in shadowed[0].message

    def test_prefix_clause_shadows_narrower_same_prefix_clause(self):
        net, one, two, prefix = line_network()
        imports = net.get_session(two, one).ensure_import_map()
        imports.append(Clause(Match(prefix=prefix), Action.PERMIT))
        imports.append(
            Clause(Match(prefix=prefix, path_len_lt=4), Action.DENY)
        )
        findings = analyze_policies(net)
        assert [f.rule for f in findings] == [RULE_SHADOWED]

    def test_disjoint_prefix_clauses_do_not_shadow(self):
        net, one, two, prefix = line_network()
        imports = net.get_session(two, one).ensure_import_map()
        imports.append(Clause(Match(prefix=prefix), Action.DENY))
        imports.append(
            Clause(Match(prefix=Prefix("99.0.0.0/24")), Action.DENY)
        )
        assert analyze_policies(net) == []


class TestUnsatisfiableAndContradictory:
    def test_contradictory_length_bounds_are_flagged(self):
        net, one, two, prefix = line_network()
        exports = net.get_session(two, one).ensure_export_map()
        exports.append(
            Clause(
                Match(prefix=prefix, path_len_lt=2, path_len_gt=3), Action.DENY
            )
        )
        findings = analyze_policies(net)
        assert [f.rule for f in findings] == [RULE_UNSATISFIABLE]

    def test_contradictory_rankings_same_prefix_same_session(self):
        net, one, two, prefix = line_network()
        imports = net.get_session(two, one).ensure_import_map()
        imports.append(Clause(Match(prefix=prefix), set_med=0))
        imports.append(Clause(Match(prefix=prefix), set_med=50))
        findings = analyze_policies(net)
        assert [f.rule for f in findings] == [RULE_CONTRADICTORY]
        assert findings[0].severity is Severity.WARNING

    def test_identical_repeated_ranking_is_plain_shadowing(self):
        net, one, two, prefix = line_network()
        imports = net.get_session(two, one).ensure_import_map()
        imports.append(Clause(Match(prefix=prefix), set_med=0))
        imports.append(Clause(Match(prefix=prefix), set_med=0))
        findings = analyze_policies(net)
        assert [f.rule for f in findings] == [RULE_SHADOWED]


class TestBlockingFilters:
    def _dataset(self):
        return PathDataset(
            [ObservedRoute("p1", 1, prefix_for_asn(2), ASPath((1, 2)))]
        )

    def test_filter_exceeding_all_observed_lengths_is_an_error(self):
        net, one, two, prefix = line_network()
        exports = net.get_session(two, one).ensure_export_map()
        exports.append(
            Clause(Match(prefix=prefix, path_len_lt=3), Action.DENY)
        )
        findings = analyze_policies(net, dataset=self._dataset())
        blocking = [f for f in findings if f.rule == RULE_BLOCKING_FILTER]
        assert len(blocking) == 1
        assert blocking[0].severity is Severity.ERROR
        assert blocking[0].prefix == prefix
        assert blocking[0].routers == (one.router_id,)

    def test_matching_threshold_is_not_blocking(self):
        net, one, two, prefix = line_network()
        exports = net.get_session(two, one).ensure_export_map()
        # Observed announced path (2,) has length 1; < 1 denies nothing seen.
        exports.append(
            Clause(Match(prefix=prefix, path_len_lt=1), Action.DENY)
        )
        findings = analyze_policies(net, dataset=self._dataset())
        assert [f for f in findings if f.rule == RULE_BLOCKING_FILTER] == []

    def test_unfiltered_evidence_session_clears_the_router(self):
        # AS1 hears the prefix from AS2 (filtered too aggressively) and
        # from AS3 (unfiltered): some observed route still gets through,
        # so the per-quasi-router rule must NOT fire — this is exactly the
        # shape the Section 4.6 refiner produces on sibling quasi-routers.
        net = Network("tri")
        one = net.add_router(1)
        two = net.add_router(2)
        three = net.add_router(3)
        net.connect(one, two)
        net.connect(one, three)
        net.connect(two, three)
        prefix = prefix_for_asn(2)
        net.originate(two, prefix)
        net.get_session(two, one).ensure_export_map().append(
            Clause(Match(prefix=prefix, path_len_lt=3), Action.DENY)
        )
        dataset = PathDataset(
            [
                ObservedRoute("p1", 1, prefix, ASPath((1, 2))),
                ObservedRoute("p1", 1, prefix, ASPath((1, 3, 2))),
            ]
        )
        findings = analyze_policies(net, dataset=dataset)
        assert [f for f in findings if f.rule == RULE_BLOCKING_FILTER] == []

    def test_shadowed_filter_does_not_block(self):
        net, one, two, prefix = line_network()
        exports = net.get_session(two, one).ensure_export_map()
        exports.append(Clause(Match(prefix=prefix), Action.PERMIT))
        exports.append(
            Clause(Match(prefix=prefix, path_len_lt=3), Action.DENY)
        )
        findings = analyze_policies(net, dataset=self._dataset())
        assert [f for f in findings if f.rule == RULE_BLOCKING_FILTER] == []


class TestStaleRefineClauses:
    def test_refine_tag_for_unknown_prefix_is_flagged(self):
        net, one, two, prefix = line_network()
        stale = prefix_for_asn(5)  # no AS in the dataset originates this
        net.get_session(two, one).ensure_export_map().append(
            Clause(Match(prefix=stale, path_len_lt=2), Action.DENY,
                   tag=FILTER_TAG)
        )
        dataset = PathDataset(
            [ObservedRoute("p1", 1, prefix, ASPath((1, 2)))]
        )
        findings = analyze_policies(net, dataset=dataset)
        stale_findings = [f for f in findings if f.rule == RULE_STALE_REFINE]
        assert len(stale_findings) == 1
        assert stale_findings[0].prefix == stale

    def test_refine_tag_for_dataset_prefix_is_fine(self):
        net, one, two, prefix = line_network()
        net.get_session(two, one).ensure_export_map().append(
            Clause(Match(prefix=prefix, path_len_lt=1), Action.DENY,
                   tag=FILTER_TAG)
        )
        dataset = PathDataset(
            [ObservedRoute("p1", 1, prefix, ASPath((1, 2)))]
        )
        findings = analyze_policies(net, dataset=dataset)
        assert [f for f in findings if f.rule == RULE_STALE_REFINE] == []


class TestTopologyLint:
    def test_isolated_router_is_flagged(self):
        net, *_ = line_network()
        loner = net.add_router(7)
        findings = analyze_topology(net)
        isolated = [f for f in findings if f.rule == RULE_ISOLATED]
        assert len(isolated) == 1
        assert isolated[0].routers == (loner.router_id,)

    def test_duplicated_router_is_a_merge_candidate(self):
        net, one, two, prefix = line_network()
        clone = net.duplicate_router(one)
        findings = analyze_topology(net)
        redundant = [f for f in findings if f.rule == RULE_REDUNDANT]
        assert len(redundant) == 1
        assert set(redundant[0].routers) == {one.router_id, clone.router_id}
        assert redundant[0].severity is Severity.INFO

    def test_diverged_policies_are_not_redundant(self):
        net, one, two, prefix = line_network()
        clone = net.duplicate_router(one)
        session = net.get_session(two, clone)
        session.ensure_import_map().append(Clause(Match(prefix=prefix), set_med=7))
        findings = analyze_topology(net)
        assert [f for f in findings if f.rule == RULE_REDUNDANT] == []

    def test_unreachable_as_needs_observers(self):
        net, *_ = line_network()
        island_a = net.add_router(8)
        island_b = net.add_router(9)
        net.connect(island_a, island_b)
        assert analyze_topology(net) == []  # no observers, rule disabled
        findings = analyze_topology(net, observer_asns={1})
        unreachable = [f for f in findings if f.rule == RULE_UNREACHABLE]
        assert len(unreachable) == 1
        assert set(unreachable[0].asns) == {8, 9}


class TestAnalyzerAndReport:
    def test_unknown_pass_raises(self):
        net, *_ = line_network()
        with pytest.raises(ValueError, match="unknown analysis passes"):
            analyze_network(net, passes=("safety", "sorcery"))

    def test_pass_selection_limits_rules(self):
        net, *_ = line_network()
        net.add_router(7)  # isolated
        report = analyze_network(net, passes=("policy",))
        assert report.passes == ["policy"]
        assert report.findings == []
        report = analyze_network(net, passes=("topology",))
        assert [f.rule for f in report.findings] == [RULE_ISOLATED]

    def test_report_json_round_trips(self):
        net, one, two, prefix = line_network()
        exports = net.get_session(two, one).ensure_export_map()
        exports.append(
            Clause(
                Match(prefix=prefix, path_len_lt=2, path_len_gt=3), Action.DENY
            )
        )
        report = analyze_network(net)
        payload = json.loads(report.to_json())
        assert payload["counts"]["warning"] == 1
        assert payload["exit_code"] == 0
        assert payload["findings"][0]["rule"] == RULE_UNSATISFIABLE
        assert set(payload["passes"]) == {"safety", "policy", "topology"}

    def test_exit_code_nonzero_only_for_errors(self):
        report = AnalysisReport()
        report.add(Finding("some-rule", Severity.WARNING, "meh"))
        assert report.exit_code == 0
        report.add(Finding("other-rule", Severity.ERROR, "bad"))
        assert report.exit_code == 1

    def test_unsafe_prefixes_only_counts_safety_errors(self):
        prefix = Prefix("10.0.0.0/24")
        report = AnalysisReport()
        report.add(
            Finding(RULE_BLOCKING_FILTER, Severity.ERROR, "x", prefix=prefix)
        )
        assert report.unsafe_prefixes() == []
        report.add(
            Finding("safety-dispute-wheel", Severity.ERROR, "x", prefix=prefix)
        )
        assert report.unsafe_prefixes() == [prefix]

    def test_render_orders_by_severity_and_caps(self):
        report = AnalysisReport()
        report.extend(
            [
                Finding("a-rule", Severity.INFO, "note"),
                Finding("b-rule", Severity.ERROR, "broken"),
                Finding("c-rule", Severity.WARNING, "meh"),
            ],
            "policy",
        )
        text = report.render(max_findings=2)
        lines = text.splitlines()
        assert lines[0].startswith("error")
        assert lines[1].startswith("warning")
        assert "1 more findings omitted" in lines[2]
        assert "1 errors, 1 warnings, 1 notes" in lines[-1]
