"""Tests for escalating-budget retry and divergence quarantine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.engine import default_message_budget, simulate_prefix
from repro.bgp.network import Network
from repro.net.prefix import Prefix
from repro.resilience.faults import inject_dispute_wheel
from repro.resilience.retry import (
    CONVERGED,
    DIVERGED,
    TRANSIENT,
    RetryPolicy,
    simulate_network_with_retry,
    simulate_prefix_with_retry,
)


def gadget_network(wheel_asns=(1, 2, 3), extra_spokes=0, origin_asn=4):
    """Hub-and-spoke network with the wheel ASes forming a triangle."""
    net = Network("gadget")
    spokes = {asn: net.add_router(asn) for asn in wheel_asns}
    hub = net.add_router(origin_asn)
    prefix = Prefix("10.0.0.0/24")
    net.originate(hub, prefix)
    for router in spokes.values():
        net.connect(router, hub)
    ring = list(wheel_asns)
    for a, b in zip(ring, ring[1:] + ring[:1]):
        net.connect(spokes[a], spokes[b])
    for index in range(extra_spokes):
        net.connect(net.add_router(1000 + index), hub)
    return net, prefix


class TestClassification:
    def test_healthy_prefix_is_converged_first_try(self):
        net, prefix = gadget_network()
        stats, outcome = simulate_prefix_with_retry(net, prefix)
        assert outcome.status == CONVERGED
        assert outcome.attempts == 1
        assert stats.diverged == []

    def test_tiny_budget_is_transient_after_escalation(self):
        net, prefix = gadget_network(extra_spokes=4)
        policy = RetryPolicy(max_attempts=6, initial_budget=1, budget_growth=8.0)
        stats, outcome = simulate_prefix_with_retry(net, prefix, policy=policy)
        assert outcome.status == TRANSIENT
        assert outcome.attempts > 1
        assert stats.diverged == []
        # the converged state matches an unretried run with a big budget
        best = {r.router_id: r.best(prefix) for r in net.routers.values()}
        net2, prefix2 = gadget_network(extra_spokes=4)
        simulate_prefix(net2, prefix2)
        for router in net2.routers.values():
            mine = best[router.router_id]
            theirs = router.best(prefix2)
            assert (mine is None) == (theirs is None)
            if mine is not None:
                assert mine.as_path == theirs.as_path

    def test_dispute_wheel_is_quarantined(self):
        net, prefix = gadget_network()
        inject_dispute_wheel(net, prefix, (1, 2, 3))
        policy = RetryPolicy(max_attempts=3, initial_budget=500, budget_cap=5000)
        stats, outcome = simulate_prefix_with_retry(net, prefix, policy=policy)
        assert outcome.status == DIVERGED
        assert outcome.attempts == 3
        assert stats.diverged == [prefix]
        assert all(r.best(prefix) is None for r in net.routers.values())

    def test_budget_cap_stops_escalation_early(self):
        net, prefix = gadget_network()
        inject_dispute_wheel(net, prefix, (1, 2, 3))
        policy = RetryPolicy(max_attempts=100, initial_budget=500, budget_cap=500)
        _, outcome = simulate_prefix_with_retry(net, prefix, policy=policy)
        assert outcome.status == DIVERGED
        assert outcome.attempts == 1  # budget already at cap: no point retrying

    def test_network_level_run_mixes_outcomes(self):
        net, prefix = gadget_network()
        clean = Prefix("10.0.1.0/24")
        net.originate(net.routers[list(net.routers)[0]], clean)
        inject_dispute_wheel(net, prefix, (1, 2, 3))
        result = simulate_network_with_retry(
            net, policy=RetryPolicy(max_attempts=2, initial_budget=500, budget_cap=2000)
        )
        assert result.diverged == [prefix]
        assert clean not in result.diverged
        assert result.engine.diverged == [prefix]
        document = result.to_dict()
        assert document["diverged"] == [str(prefix)]
        assert document["prefixes"] == 2

    def test_policy_budget_helpers(self):
        net, _ = gadget_network()
        policy = RetryPolicy(initial_budget=None, budget_growth=4.0, budget_cap=100)
        assert policy.first_budget(net) == 100  # capped below engine default
        assert default_message_budget(net) > 100
        assert policy.next_budget(100) == 100
        assert RetryPolicy(budget_growth=4.0).next_budget(10) == 40


class TestDisputeWheelProperty:
    """Any injected dispute wheel ends in quarantine — never a hang."""

    @settings(max_examples=20, deadline=None)
    @given(
        wheel_asns=st.permutations((1, 2, 3)),
        extra_spokes=st.integers(min_value=0, max_value=3),
        initial_budget=st.integers(min_value=10, max_value=2000),
        growth=st.floats(min_value=1.5, max_value=8.0),
        attempts=st.integers(min_value=1, max_value=4),
    )
    def test_wheel_always_quarantined_within_deadline(
        self, wheel_asns, extra_spokes, initial_budget, growth, attempts
    ):
        net, prefix = gadget_network(extra_spokes=extra_spokes)
        inject_dispute_wheel(net, prefix, tuple(wheel_asns))
        policy = RetryPolicy(
            max_attempts=attempts,
            initial_budget=initial_budget,
            budget_growth=growth,
            budget_cap=50_000,
            deadline_seconds=30.0,
        )
        stats, outcome = simulate_prefix_with_retry(net, prefix, policy=policy)
        assert outcome.status == DIVERGED
        assert outcome.attempts <= attempts
        assert outcome.elapsed < 30.0
        assert outcome.messages <= attempts * 50_000 + attempts
        assert stats.diverged == [prefix]
        # quarantine: no residual routing state anywhere
        assert all(r.best(prefix) is None for r in net.routers.values())
