"""Unit tests for the IGP topology (repro.bgp.igp)."""

import math

import pytest

from repro.bgp.igp import IGPTopology
from repro.errors import TopologyError


class TestConstruction:
    def test_add_router_idempotent(self):
        igp = IGPTopology()
        igp.add_router(1)
        igp.add_router(1)
        assert list(igp.routers()) == [1]

    def test_add_link_registers_routers(self):
        igp = IGPTopology()
        igp.add_link(1, 2, 3.0)
        assert set(igp.routers()) == {1, 2}
        assert igp.neighbors(1) == {2: 3.0}

    def test_rejects_self_loop(self):
        with pytest.raises(TopologyError):
            IGPTopology().add_link(1, 1)

    def test_rejects_non_positive_cost(self):
        with pytest.raises(TopologyError):
            IGPTopology().add_link(1, 2, 0)
        with pytest.raises(TopologyError):
            IGPTopology().add_link(1, 2, -3)

    def test_link_update_overwrites_cost(self):
        igp = IGPTopology()
        igp.add_link(1, 2, 3.0)
        igp.add_link(1, 2, 7.0)
        assert igp.cost(1, 2) == 7.0


class TestShortestPaths:
    def make_square(self):
        """1-2-3-4-1 ring with one expensive diagonal."""
        igp = IGPTopology()
        igp.add_link(1, 2, 1)
        igp.add_link(2, 3, 1)
        igp.add_link(3, 4, 1)
        igp.add_link(4, 1, 1)
        igp.add_link(1, 3, 5)
        return igp

    def test_self_cost_zero(self):
        assert self.make_square().cost(1, 1) == 0.0

    def test_direct_link(self):
        assert self.make_square().cost(1, 2) == 1.0

    def test_prefers_cheap_two_hop_over_expensive_direct(self):
        assert self.make_square().cost(1, 3) == 2.0

    def test_symmetric(self):
        igp = self.make_square()
        assert igp.cost(2, 4) == igp.cost(4, 2) == 2.0

    def test_unreachable_is_infinite(self):
        igp = self.make_square()
        igp.add_router(99)
        assert math.isinf(igp.cost(1, 99))
        assert math.isinf(igp.cost(99, 1))

    def test_unknown_source_is_infinite(self):
        assert math.isinf(IGPTopology().cost(1, 2))

    def test_cache_invalidated_on_topology_change(self):
        igp = self.make_square()
        assert igp.cost(1, 3) == 2.0
        igp.add_link(1, 3, 1)
        assert igp.cost(1, 3) == 1.0


class TestConnectivity:
    def test_empty_and_singleton_connected(self):
        igp = IGPTopology()
        assert igp.is_connected()
        igp.add_router(1)
        assert igp.is_connected()

    def test_connected_chain(self):
        igp = IGPTopology()
        igp.add_link(1, 2)
        igp.add_link(2, 3)
        assert igp.is_connected()

    def test_disconnected_detected(self):
        igp = IGPTopology()
        igp.add_link(1, 2)
        igp.add_router(3)
        assert not igp.is_connected()

    def test_len_and_repr(self):
        igp = IGPTopology()
        igp.add_link(1, 2)
        assert len(igp) == 2
        assert "routers=2" in repr(igp)
