"""Unit tests for repro.topology.graph and clique inference."""

import pytest

from repro.errors import TopologyError
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.topology.clique import infer_level1_clique
from repro.topology.dataset import ObservedRoute, PathDataset
from repro.topology.graph import ASGraph


def dataset_from_paths(*paths):
    ds = PathDataset()
    prefix = Prefix("10.0.0.0/24")
    for path in paths:
        ds.add(ObservedRoute(f"p{path[0]}", path[0], prefix, ASPath(path)))
    return ds


class TestASGraph:
    def test_from_dataset_extracts_edges(self):
        graph = ASGraph.from_dataset(dataset_from_paths((1, 2, 3), (1, 4)))
        assert graph.has_edge(1, 2) and graph.has_edge(2, 3) and graph.has_edge(1, 4)
        assert graph.num_ases() == 4 and graph.num_edges() == 3

    def test_prepending_does_not_create_self_loop(self):
        graph = ASGraph.from_dataset(dataset_from_paths((1, 2, 2, 3)))
        assert not graph.has_edge(2, 2)
        assert graph.num_edges() == 2

    def test_from_edges(self):
        graph = ASGraph.from_edges([(1, 2), (2, 3)])
        assert graph.neighbors(2) == {1, 3}

    def test_add_edge_rejects_self_loop(self):
        with pytest.raises(TopologyError):
            ASGraph().add_edge(1, 1)

    def test_remove_as_cleans_neighbors(self):
        graph = ASGraph.from_edges([(1, 2), (2, 3)])
        graph.remove_as(2)
        assert 2 not in graph
        assert graph.neighbors(1) == set() and graph.neighbors(3) == set()

    def test_remove_edge(self):
        graph = ASGraph.from_edges([(1, 2), (2, 3)])
        graph.remove_edge(1, 2)
        assert not graph.has_edge(1, 2)
        assert graph.has_edge(2, 3)

    def test_degree(self):
        graph = ASGraph.from_edges([(1, 2), (1, 3), (1, 4)])
        assert graph.degree(1) == 3 and graph.degree(2) == 1
        assert graph.degree(99) == 0

    def test_edges_canonical(self):
        graph = ASGraph.from_edges([(3, 1), (2, 1)])
        assert set(graph.edges()) == {(1, 3), (1, 2)}

    def test_subgraph(self):
        graph = ASGraph.from_edges([(1, 2), (2, 3), (3, 4)])
        sub = graph.subgraph({1, 2, 3})
        assert sub.has_edge(1, 2) and sub.has_edge(2, 3)
        assert 4 not in sub

    def test_is_clique(self):
        graph = ASGraph.from_edges([(1, 2), (1, 3), (2, 3), (3, 4)])
        assert graph.is_clique({1, 2, 3})
        assert not graph.is_clique({1, 2, 4})

    def test_copy_independent(self):
        graph = ASGraph.from_edges([(1, 2)])
        clone = graph.copy()
        clone.remove_edge(1, 2)
        assert graph.has_edge(1, 2)

    def test_to_networkx(self):
        graph = ASGraph.from_edges([(1, 2), (2, 3)])
        nx_graph = graph.to_networkx()
        assert nx_graph.number_of_nodes() == 3
        assert nx_graph.number_of_edges() == 2


class TestLevel1Clique:
    def make_core_graph(self):
        """Tier-1s 1,2,3 fully meshed; 4 peers with all of them; 5 with some."""
        edges = [(1, 2), (1, 3), (2, 3)]
        edges += [(4, 1), (4, 2), (4, 3)]
        edges += [(5, 1), (5, 2)]
        edges += [(6, 4)]  # customer of 4 boosts 4's degree
        return ASGraph.from_edges(edges)

    def test_grows_seed_to_maximal_clique(self):
        graph = self.make_core_graph()
        clique = infer_level1_clique(graph, [1, 2])
        assert clique == {1, 2, 3, 4}

    def test_seed_must_exist(self):
        with pytest.raises(TopologyError):
            infer_level1_clique(self.make_core_graph(), [99])

    def test_seed_must_be_clique(self):
        graph = self.make_core_graph()
        with pytest.raises(TopologyError):
            infer_level1_clique(graph, [5, 3])  # 5 and 3 not adjacent

    def test_empty_seed_rejected(self):
        with pytest.raises(TopologyError):
            infer_level1_clique(self.make_core_graph(), [])

    def test_result_is_complete_subgraph(self):
        graph = self.make_core_graph()
        clique = infer_level1_clique(graph, [1])
        assert graph.is_clique(clique)

    def test_degree_greedy_prefers_hubs(self):
        # 4 has degree 4 (three tier-1 peers + customer 6): added before 5.
        graph = self.make_core_graph()
        clique = infer_level1_clique(graph, [1, 2])
        assert 4 in clique and 5 not in clique
