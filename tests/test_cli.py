"""End-to-end tests for the ``repro`` command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def dump_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "snapshot.dump"
    code = main(
        [
            "synthesize",
            "--seed",
            "5",
            "--scale",
            "0.2",
            "--points",
            "12",
            "--out",
            str(path),
        ]
    )
    assert code == 0
    return path


class TestSynthesize:
    def test_writes_dump_and_prints_seeds(self, dump_file, capsys):
        assert dump_file.exists()
        assert dump_file.read_text().startswith("TABLE_DUMP2|")

    def test_writes_ground_truth_config(self, tmp_path):
        dump = tmp_path / "d.dump"
        config = tmp_path / "gt.cbgp"
        code = main(
            [
                "synthesize", "--seed", "3", "--scale", "0.15",
                "--points", "8", "--out", str(dump), "--cbgp", str(config),
            ]
        )
        assert code == 0
        assert "net add node" in config.read_text()


class TestAnalyze:
    def test_reports_dataset_and_diversity(self, dump_file, capsys):
        code = main(["analyze", str(dump_file), "--seeds", "10", "11"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "level-1 clique" in captured
        assert "multipath pairs" in captured
        assert "table 1 quantiles" in captured

    def test_defaults_seed_to_highest_degree(self, dump_file, capsys):
        assert main(["analyze", str(dump_file)]) == 0


class TestRefineAndWhatIf:
    def test_refine_reports_and_saves_model(self, dump_file, tmp_path, capsys):
        model_path = tmp_path / "model.cbgp"
        code = main(["refine", str(dump_file), "--out", str(model_path)])
        captured = capsys.readouterr().out
        assert code == 0, captured
        assert "converged=True" in captured
        assert "validation" in captured
        assert model_path.exists()

    def test_whatif_on_saved_model(self, dump_file, tmp_path, capsys):
        model_path = tmp_path / "model.cbgp"
        assert main(["refine", str(dump_file), "--out", str(model_path)]) == 0
        capsys.readouterr()
        code = main(["whatif", str(model_path), "--remove", "10", "11"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "changed pairs" in captured


class TestParser:
    def test_no_subcommand_shows_help(self, capsys):
        assert main([]) == 2

    def test_unknown_subcommand_errors(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
