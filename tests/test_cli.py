"""End-to-end tests for the ``repro`` command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def dump_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "snapshot.dump"
    code = main(
        [
            "synthesize",
            "--seed",
            "5",
            "--scale",
            "0.2",
            "--points",
            "12",
            "--out",
            str(path),
        ]
    )
    assert code == 0
    return path


class TestSynthesize:
    def test_writes_dump_and_prints_seeds(self, dump_file, capsys):
        assert dump_file.exists()
        assert dump_file.read_text().startswith("TABLE_DUMP2|")

    def test_writes_ground_truth_config(self, tmp_path):
        dump = tmp_path / "d.dump"
        config = tmp_path / "gt.cbgp"
        code = main(
            [
                "synthesize", "--seed", "3", "--scale", "0.15",
                "--points", "8", "--out", str(dump), "--cbgp", str(config),
            ]
        )
        assert code == 0
        assert "net add node" in config.read_text()


class TestAnalyze:
    def test_reports_dataset_and_diversity(self, dump_file, capsys):
        code = main(["analyze", str(dump_file), "--seeds", "10", "11"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "level-1 clique" in captured
        assert "multipath pairs" in captured
        assert "table 1 quantiles" in captured

    def test_defaults_seed_to_highest_degree(self, dump_file, capsys):
        assert main(["analyze", str(dump_file)]) == 0


class TestRefineAndWhatIf:
    def test_refine_reports_and_saves_model(self, dump_file, tmp_path, capsys):
        model_path = tmp_path / "model.cbgp"
        code = main(["refine", str(dump_file), "--out", str(model_path)])
        captured = capsys.readouterr().out
        assert code == 0, captured
        assert "converged=True" in captured
        assert "validation" in captured
        assert model_path.exists()

    def test_whatif_on_saved_model(self, dump_file, tmp_path, capsys):
        model_path = tmp_path / "model.cbgp"
        assert main(["refine", str(dump_file), "--out", str(model_path)]) == 0
        capsys.readouterr()
        code = main(["whatif", str(model_path), "--remove", "10", "11"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "changed pairs" in captured


class TestLint:
    @pytest.fixture(scope="class")
    def model_file(self, dump_file, tmp_path_factory):
        path = tmp_path_factory.mktemp("lint") / "model.cbgp"
        assert main(["refine", str(dump_file), "--out", str(path)]) == 0
        return path

    def test_clean_model_exits_zero(self, model_file, capsys):
        code = main(["lint", str(model_file)])
        captured = capsys.readouterr().out
        assert code == 0
        assert "0 errors" in captured

    def test_dump_enables_dataset_rules(self, model_file, dump_file, capsys):
        code = main(["lint", str(model_file), "--dump", str(dump_file)])
        captured = capsys.readouterr().out
        assert code == 0, captured

    def test_json_report_is_machine_readable(self, model_file, capsys):
        import json

        code = main(["lint", str(model_file), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == payload["exit_code"] == 0
        assert set(payload["passes"]) == {"safety", "policy", "topology"}

    def test_wheel_config_exits_nonzero_and_names_the_wheel(
        self, tmp_path, capsys
    ):
        import io

        from repro.bgp.network import Network
        from repro.cbgp.export import export_network
        from repro.net.prefix import prefix_for_asn
        from repro.resilience.faults import inject_dispute_wheel

        net = Network("gadget")
        spokes = {asn: net.add_router(asn) for asn in (1, 2, 3)}
        hub = net.add_router(4)
        prefix = prefix_for_asn(4)
        net.originate(hub, prefix)
        for router in spokes.values():
            net.connect(router, hub)
        for a, b in ((1, 2), (2, 3), (3, 1)):
            net.connect(spokes[a], spokes[b])
        inject_dispute_wheel(net, prefix, (1, 2, 3))
        buffer = io.StringIO()
        export_network(net, buffer)
        config = tmp_path / "wheel.cbgp"
        config.write_text(buffer.getvalue())
        code = main(["lint", str(config)])
        captured = capsys.readouterr().out
        assert code == 1
        assert "safety-dispute-wheel" in captured
        assert str(prefix) in captured

    def test_missing_model_is_a_data_error(self, tmp_path, capsys):
        code = main(["lint", str(tmp_path / "nope.cbgp")])
        assert code == 4
        assert "error:" in capsys.readouterr().err

    def test_unknown_pass_is_a_usage_error(self, model_file, capsys):
        code = main(["lint", str(model_file), "--passes", "sorcery"])
        assert code == 2
        assert "unknown analysis passes" in capsys.readouterr().err

    def test_refine_lint_gate_flag_is_accepted(self, dump_file, capsys):
        assert main(["refine", str(dump_file), "--lint-gate"]) == 0


class TestParser:
    def test_no_subcommand_shows_help(self, capsys):
        assert main([]) == 2

    def test_unknown_subcommand_errors(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestParallelFlags:
    def test_refine_with_workers_matches_sequential(
        self, dump_file, tmp_path, capsys
    ):
        seq_report = tmp_path / "seq.json"
        par_report = tmp_path / "par.json"
        assert main(
            ["refine", str(dump_file), "--max-iterations", "5",
             "--health-report", str(seq_report)]
        ) in (0, 1)
        assert main(
            ["refine", str(dump_file), "--max-iterations", "5",
             "--workers", "2", "--health-report", str(par_report)]
        ) in (0, 1)
        capsys.readouterr()
        import json

        seq = json.loads(seq_report.read_text())
        par = json.loads(par_report.read_text())
        assert par["refinement"] == seq["refinement"]
        assert par["exit_code"] == seq["exit_code"]
        assert par["simulation"]["supervision"]["workers"] == 2

    def test_chaos_worker_faults_exit_diverged(self, tmp_path, capsys):
        report = tmp_path / "health.json"
        code = main(
            ["chaos", "--scale", "0.1", "--points", "6",
             "--dispute-wheels", "0", "--flap-sessions", "0",
             "--corrupt-fraction", "0", "--truncate-fraction", "0",
             "--workers", "2", "--kill-prefixes", "1",
             "--max-resubmits", "1", "--health-report", str(report)]
        )
        assert code == 3
        captured = capsys.readouterr()
        assert "poison" in captured.err
        import json

        health = json.loads(report.read_text())
        assert health["simulation"]["poison"] == (
            health["faults"]["worker_crash_prefixes"]
        )
        assert health["simulation"]["supervision"]["deaths"] >= 2

    def test_worker_fault_flags_require_workers(self, capsys):
        assert main(["chaos", "--kill-prefixes", "1"]) == 2
        assert "--workers" in capsys.readouterr().err

    def test_sigterm_drains_to_exit_5(self, tmp_path):
        import json
        import os
        import signal
        import subprocess
        import sys
        import time

        report = tmp_path / "health.json"
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "chaos",
             "--scale", "0.15", "--points", "8",
             "--dispute-wheels", "0", "--flap-sessions", "0",
             "--workers", "2", "--hang-prefixes", "1",
             "--task-timeout", "600",
             "--health-report", str(report)],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            time.sleep(5.0)  # well into the simulate phase
            process.send_signal(signal.SIGTERM)
            code = process.wait(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
        assert code == 5
        health = json.loads(report.read_text())
        assert health["interrupted"] is True
        assert health["exit_code"] == 5
        assert health["simulation"]["supervision"]["drained"] is True


class TestWhatIfValidation:
    @pytest.fixture(scope="class")
    def model_file(self, dump_file, tmp_path_factory):
        path = tmp_path_factory.mktemp("whatif") / "model.cbgp"
        assert main(["refine", str(dump_file), "--out", str(path)]) == 0
        return path

    def test_unknown_asn_is_a_usage_error_naming_it(
        self, model_file, capsys
    ):
        code = main(["whatif", str(model_file), "--remove", "10", "64999"])
        captured = capsys.readouterr()
        assert code == 2
        assert "AS 64999" in captured.err
        assert "changed pairs" not in captured.out

    def test_unknown_edge_between_known_ases_is_usage_error(
        self, model_file, capsys
    ):
        # Both ASNs exist but may not peer; either way never exit 0 with
        # a silent "nothing changed" report for bad input.
        code = main(["whatif", str(model_file), "--remove", "10", "11"])
        assert code in (0, 2)

    def test_missing_model_is_a_data_error(self, tmp_path, capsys):
        code = main(
            ["whatif", str(tmp_path / "nope.cbgp"), "--remove", "1", "2"]
        )
        assert code == 4
        assert "error:" in capsys.readouterr().err


class TestServeCLI:
    @pytest.fixture(scope="class")
    def artifact_file(self, dump_file, tmp_path_factory):
        base = tmp_path_factory.mktemp("artifact")
        model = base / "model.cbgp"
        artifact = base / "pred.artifact"
        assert main(["refine", str(dump_file), "--out", str(model)]) == 0
        assert main(
            ["compile-artifact", str(model), "--out", str(artifact)]
        ) == 0
        return artifact

    def test_compile_artifact_writes_loadable_file(
        self, artifact_file, capsys
    ):
        from repro.serve import PredictionArtifact

        artifact = PredictionArtifact.load(artifact_file)
        assert artifact.pair_count > 0
        assert artifact.meta["argv"]  # run-metadata stamp present

    def test_compile_artifact_unknown_observer_exits_2(
        self, dump_file, tmp_path, capsys
    ):
        model = tmp_path / "model.cbgp"
        assert main(["refine", str(dump_file), "--out", str(model)]) == 0
        capsys.readouterr()
        code = main(
            ["compile-artifact", str(model), "--out",
             str(tmp_path / "a.artifact"), "--observers", "64999"]
        )
        assert code == 2
        assert "64999" in capsys.readouterr().err

    def test_query_paths(self, artifact_file, capsys):
        code = main(
            ["query", str(artifact_file), "--origin", "10",
             "--observer", "11"]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "AS11 -> AS10" in captured

    def test_query_json_matches_live_schema(self, artifact_file, capsys):
        import json

        code = main(
            ["query", str(artifact_file), "--origin", "10",
             "--observer", "11", "--json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["origin"] == 10
        assert payload["reachable"] is True

    def test_query_unknown_origin_exits_2_naming_it(
        self, artifact_file, capsys
    ):
        code = main(
            ["query", str(artifact_file), "--origin", "64999",
             "--observer", "11"]
        )
        assert code == 2
        assert "64999" in capsys.readouterr().err

    def test_query_requires_exactly_one_question(self, artifact_file, capsys):
        assert main(
            ["query", str(artifact_file), "--observer", "11"]
        ) == 2
        assert main(
            ["query", str(artifact_file), "--origin", "10",
             "--lookup", "0.10.0.1", "--observer", "11"]
        ) == 2

    def test_query_corrupt_artifact_exits_4(self, tmp_path, capsys):
        bogus = tmp_path / "bad.artifact"
        bogus.write_bytes(b"definitely not an artifact")
        code = main(
            ["query", str(bogus), "--origin", "10", "--observer", "11"]
        )
        assert code == 4
        assert "artifact" in capsys.readouterr().err
