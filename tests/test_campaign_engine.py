"""Engine tests: determinism, quarantine, checkpoints, observability.

The acceptance criteria live here: a depeer campaign over every
removable session completes end to end and ranks identically whether it
ran sequentially, across 4 supervised workers, or was checkpointed and
resumed; poison scenarios are quarantined, never fatal.
"""

import dataclasses
from dataclasses import dataclass

import pytest

from repro.campaign import (
    CampaignReport,
    ScenarioOutcome,
    campaign_fingerprint,
    context_from_artifact,
    generate_depeer,
    load_checkpoint,
    run_campaign,
    validate_baseline,
    write_checkpoint,
)
from repro.errors import ArtifactError, CheckpointError, TopologyError
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.obs.trace import EVENT_SCENARIO, RecordingTracer, tracing
from repro.parallel import ParallelConfig, WorkerFaults
from repro.resilience.retry import POISON
from repro.serve import compile_artifact
from tests.test_campaign_scenarios import line_model

pytestmark = pytest.mark.timeout(300)


@pytest.fixture(scope="module")
def model():
    return line_model()


@pytest.fixture(scope="module")
def artifact(model):
    compiled, _ = compile_artifact(model)
    model.network.clear_routing()
    return compiled


@pytest.fixture(scope="module")
def context(artifact):
    return context_from_artifact(artifact)


@dataclass(frozen=True)
class ExplodingScenario:
    """A scenario whose run always raises (the in-process poison case)."""

    kind: str = "depeer"

    @property
    def key(self) -> str:
        return "depeer:AS-exploding"

    def run(self, network, context, config, policy) -> dict:
        raise TopologyError("synthetic scenario failure")


class TestRunCampaign:
    def test_full_depeer_sweep_completes_and_ranks(self, model, context):
        report = run_campaign(
            model, "depeer", generate_depeer(model), context
        )
        assert report.counts() == {
            "scenarios": 3, "completed": 3, "quarantined": 0
        }
        ranked = report.ranked()
        assert [o.key for o in ranked][0] == "depeer:AS2-AS3"
        assert ranked[0].blast_radius == 8
        assert report.exit_code == 0

    def test_parallel_matches_sequential_bit_identical(self, model, context):
        scenarios = generate_depeer(model)
        sequential = run_campaign(model, "depeer", scenarios, context)
        parallel = run_campaign(
            model, "depeer", scenarios, context,
            parallel=ParallelConfig(workers=4),
        )
        assert parallel.to_json(include_meta=False) == sequential.to_json(
            include_meta=False
        )
        assert parallel.meta["supervision"]  # the pool actually ran

    def test_sequential_poison_is_quarantined_not_fatal(self, model, context):
        scenarios = [*generate_depeer(model), ExplodingScenario()]
        report = run_campaign(model, "depeer", scenarios, context)
        assert report.counts()["quarantined"] == 1
        assert report.counts()["completed"] == 3
        bad = [o for o in report.outcomes if o.quarantined]
        assert bad[0].key == "depeer:AS-exploding"
        assert bad[0].status == POISON
        assert "synthetic scenario failure" in bad[0].failures[0]
        assert report.exit_code == 3

    def test_worker_crash_is_quarantined_not_fatal(self, model, context):
        # The injected fault kills the worker the instant the scenario is
        # dispatched; resubmission exhausts and the scenario is poison.
        scenarios = generate_depeer(model)
        report = run_campaign(
            model, "depeer", scenarios, context,
            parallel=ParallelConfig(
                workers=2, max_resubmits=1, task_timeout=30,
                faults=WorkerFaults(
                    crash_prefixes=("depeer:AS1-AS2",)
                ),
            ),
        )
        by_key = {o.key: o for o in report.outcomes}
        assert by_key["depeer:AS1-AS2"].status == POISON
        assert not by_key["depeer:AS2-AS3"].quarantined
        assert report.exit_code == 3

    def test_campaign_metrics_are_emitted(self, model, context):
        registry = MetricsRegistry()
        set_registry(registry)
        try:
            run_campaign(
                model, "depeer",
                [*generate_depeer(model), ExplodingScenario()], context,
            )
            snap = registry.snapshot()
            assert snap["counters"]["campaign.scenarios_completed"] == 3
            assert snap["counters"]["campaign.scenarios_quarantined"] == 1
            assert snap["histograms"]["campaign.blast_radius"]["count"] == 3
        finally:
            set_registry(MetricsRegistry())

    def test_scenario_trace_events_in_key_order(self, model, context):
        tracer = RecordingTracer()
        with tracing(tracer):
            run_campaign(model, "depeer", generate_depeer(model), context)
        events = tracer.events(EVENT_SCENARIO)
        assert [e["key"] for e in events] == [
            "depeer:AS1-AS2", "depeer:AS2-AS3", "depeer:AS3-AS4"
        ]
        assert all("blast_radius" in e for e in events)
        assert events[0]["scenario_kind"] == "depeer"


class TestCheckpoint:
    def test_checkpoint_round_trip(self, tmp_path):
        outcome = ScenarioOutcome(
            key="depeer:AS1-AS2", kind="depeer", status="ok",
            blast_radius=3.0, detail={"x": 1},
        )
        path = tmp_path / "ck.json"
        write_checkpoint(path, "fp", {outcome.key: outcome})
        loaded = load_checkpoint(path, "fp")
        assert loaded == {outcome.key: outcome}

    def test_wrong_fingerprint_is_a_hard_error(self, tmp_path):
        path = tmp_path / "ck.json"
        write_checkpoint(path, "fp-a", {})
        with pytest.raises(CheckpointError, match="different campaign"):
            load_checkpoint(path, "fp-b")

    def test_corrupt_checkpoint_is_a_hard_error(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text("{not json")
        with pytest.raises(CheckpointError, match="corrupt"):
            load_checkpoint(path, "fp")

    def test_fingerprint_covers_kind_keys_and_baseline(self):
        base = campaign_fingerprint("depeer", ["a", "b"], "sum")
        assert campaign_fingerprint("depeer", ["b", "a"], "sum") == base
        assert campaign_fingerprint("hijack", ["a", "b"], "sum") != base
        assert campaign_fingerprint("depeer", ["a"], "sum") != base
        assert campaign_fingerprint("depeer", ["a", "b"], "other") != base

    def test_resume_skips_completed_and_matches_uninterrupted(
        self, model, context, tmp_path
    ):
        scenarios = generate_depeer(model)
        full = run_campaign(model, "depeer", scenarios, context)

        # Simulate an interrupted run: checkpoint holds one outcome.
        path = tmp_path / "ck.json"
        fingerprint = campaign_fingerprint(
            "depeer", (s.key for s in scenarios), context.baseline_checksum
        )
        first = next(
            o for o in full.outcomes if o.key == "depeer:AS1-AS2"
        )
        write_checkpoint(path, fingerprint, {first.key: first})

        resumed = run_campaign(
            model, "depeer", scenarios, context,
            checkpoint=path, resume=True,
        )
        assert resumed.meta["resumed"] == 1
        assert resumed.to_json(include_meta=False) == full.to_json(
            include_meta=False
        )
        # The final checkpoint now holds every outcome.
        assert len(load_checkpoint(path, fingerprint)) == 3

    def test_resume_with_changed_scenario_space_refuses(
        self, model, context, tmp_path
    ):
        scenarios = generate_depeer(model)
        path = tmp_path / "ck.json"
        write_checkpoint(path, "stale-fingerprint", {})
        with pytest.raises(CheckpointError, match="different campaign"):
            run_campaign(
                model, "depeer", scenarios, context,
                checkpoint=path, resume=True,
            )


class TestValidateBaseline:
    def test_matching_artifact_passes(self, model, artifact):
        validate_baseline(model, artifact)

    def test_foreign_artifact_is_rejected(self, model, artifact):
        other = line_model()
        compiled, _ = compile_artifact(other, observers=[1])
        # Same origins, but claim an observer the model lacks.
        foreign = dataclasses.replace(compiled, observers=(64999,))
        with pytest.raises(ArtifactError, match="64999"):
            validate_baseline(model, foreign)


class TestReport:
    def test_ranked_orders_by_blast_then_key(self):
        report = CampaignReport(
            kind="depeer",
            outcomes=[
                ScenarioOutcome("b", "depeer", "ok", 1.0),
                ScenarioOutcome("a", "depeer", "ok", 5.0),
                ScenarioOutcome("c", "depeer", "ok", 5.0),
                ScenarioOutcome("z", "depeer", "poison", 0.0),
            ],
        )
        assert [o.key for o in report.ranked()] == ["a", "c", "b", "z"]
        assert report.exit_code == 3

    def test_render_caps_at_top(self):
        report = CampaignReport(
            kind="depeer",
            outcomes=[
                ScenarioOutcome(f"s{i}", "depeer", "ok", float(i))
                for i in range(5)
            ],
        )
        text = report.render(top=2)
        assert "... 3 more scenarios omitted" in text
        assert "5 scenario(s), 5 completed, 0 quarantined" in text

    def test_meta_excluded_json_is_deterministic(self):
        report = CampaignReport(kind="depeer", meta={"elapsed_seconds": 1.0})
        assert "elapsed" not in report.to_json(include_meta=False)
        assert "elapsed" in report.to_json()
