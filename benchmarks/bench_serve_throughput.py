"""SERVE: artifact-backed query throughput, emitting BENCH_serve.json."""

from conftest import publish, run_once, write_results

from repro.experiments import serving


def test_serve_throughput(benchmark, prepared, workload_name):
    result = run_once(benchmark, serving.run, prepared)
    publish(benchmark, result)
    write_results("BENCH_serve.json", result, workload_name)
    assert len(result.rows) == 2  # cold + warm regimes
    assert result.metrics["pairs"] > 0
    assert result.metrics["warm_hit_rate"] == 1.0
    # The acceptance bar: a warmed LRU must clear 1000 queries/second.
    assert result.metrics["qps_warm"] >= 1000
    # Warm answers must never be slower than cold computes.
    assert result.metrics["qps_warm"] >= result.metrics["qps_cold"]
