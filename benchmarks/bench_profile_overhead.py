"""PROF: phase-profiler overhead on the engine, emitting BENCH_profile.json.

Quantifies the profiling tax: the NullProfiler default must stay within
a few percent of an uninstrumented engine, full phase attribution should
cost a bounded, reported factor, and the attributed phases must cover
nearly all of the simulation's wall-clock (the coverage claim
``repro profile`` makes is only as good as this number).
"""

from conftest import publish, run_once, write_results

from repro.experiments import profiling


def test_profile_overhead(benchmark, workload, workload_name):
    result = run_once(benchmark, profiling.run_profile_overhead, workload)
    publish(benchmark, result)
    write_results("BENCH_profile.json", result, workload_name)
    assert result.metrics["seconds_off"] > 0
    # Profiling must not change what the engine computes.
    assert result.metrics["messages"] > 0
    # The five engine phases alone (no coarse workload wrapper) must own
    # most of simulate()'s wall-clock; the remainder is per-prefix queue
    # seeding and bookkeeping outside the message loop.  The >=90%
    # acceptance bar applies to `repro profile refine`, whose coarse
    # phases cover that glue.
    assert result.metrics["coverage"] >= 0.75
