"""ABL2: which refinement mechanism earns the accuracy."""

from conftest import publish, run_once

from repro.experiments import ablations


def test_ablation_policy_mechanisms(benchmark, prepared):
    result = run_once(benchmark, ablations.policy_mechanisms, prepared)
    publish(benchmark, result)
    rates = {row[0]: row[3] for row in result.rows}
    assert rates["full (paper)"] >= max(
        rate for name, rate in rates.items() if name != "full (paper)"
    )
