"""Benchmark configuration.

Each benchmark regenerates one paper table/figure.  The quick ``small``
workload is the default so the whole suite runs in minutes; the numbers
recorded in EXPERIMENTS.md come from ``--workload default``.  Expensive
experiments run once per benchmark (rounds=1): the interesting output is
the rendered table, printed via ``-s`` and the ``extra_info`` mechanism.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments import DEFAULT, LARGE, SMALL, prepare
from repro.obs.meta import run_metadata

WORKLOADS = {"small": SMALL, "default": DEFAULT, "large": LARGE}

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--workload",
        default="small",
        choices=sorted(WORKLOADS),
        help="which canonical workload the benchmarks run on; "
        "EXPERIMENTS.md numbers use --workload default",
    )


@pytest.fixture(scope="session")
def workload(request):
    return WORKLOADS[request.config.getoption("--workload")]


@pytest.fixture(scope="session")
def workload_name(request):
    return request.config.getoption("--workload")


@pytest.fixture(scope="session")
def prepared(workload):
    return prepare(workload)


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


def publish(benchmark, result):
    """Attach the experiment's headline metrics and print its table."""
    for key, value in result.metrics.items():
        benchmark.extra_info[key] = value
    print()
    print(result.render())


def write_results(filename, result, workload_name=None):
    """Persist an ExperimentResult under ``results/`` with a metadata stamp.

    Every ``BENCH_*.json`` carries the git sha, interpreter and workload
    that produced it, so recorded numbers stay attributable.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    meta = run_metadata()
    if workload_name is not None:
        meta["workload"] = workload_name
    path = RESULTS_DIR / filename
    path.write_text(
        json.dumps(
            {
                "experiment": result.experiment_id,
                "title": result.title,
                "headers": result.headers,
                "rows": result.rows,
                "metrics": result.metrics,
                "notes": result.notes,
                "meta": meta,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    return path
