"""FIG3: worst-case path-diversity example extraction."""

from conftest import publish, run_once

from repro.experiments import fig3


def test_fig3_diversity_example(benchmark, prepared):
    result = run_once(benchmark, fig3.run, prepared)
    publish(benchmark, result)
    assert result.metrics["distinct_paths"] >= 2
