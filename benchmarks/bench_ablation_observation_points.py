"""ABL1: validation accuracy vs. number of training observation points."""

from conftest import publish, run_once

from repro.experiments import ablations


def test_ablation_observation_points(benchmark, prepared):
    result = run_once(
        benchmark, ablations.observation_points, prepared, fractions=(0.25, 0.5, 1.0)
    )
    publish(benchmark, result)
    assert len(result.rows) == 3
