"""SCAL: engine cost vs. topology scale."""

from conftest import publish, run_once

from repro.experiments import scaling


def test_scaling(benchmark, workload):
    result = run_once(benchmark, scaling.run, workload, factors=(0.25, 0.5, 1.0))
    publish(benchmark, result)
    assert len(result.rows) == 3
