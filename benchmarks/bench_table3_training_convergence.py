"""TAB3: iterative refinement convergence on the training set."""

from conftest import publish, run_once

from repro.experiments import table3


def test_table3_training_convergence(benchmark, prepared):
    result = run_once(benchmark, table3.run, prepared)
    publish(benchmark, result)
    assert result.metrics["converged"] == 1.0
    assert result.metrics["final_training_rib_out"] == 1.0
