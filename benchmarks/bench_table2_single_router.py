"""TAB2: single-router-per-AS baselines (shortest path / inferred policies)."""

from conftest import publish, run_once

from repro.experiments import table2


def test_table2_single_router_baselines(benchmark, prepared):
    result = run_once(benchmark, table2.run, prepared)
    publish(benchmark, result)
    # shape: the dominant disagreement cause is the path not being available
    rows = {row[0]: row for row in result.rows}
    assert rows["  AS-path not available"][1] >= rows["  shorter AS-path exists"][1]
