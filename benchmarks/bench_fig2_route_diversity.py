"""FIG2: histogram of distinct AS-paths per (origin, observer) AS pair."""

from conftest import publish, run_once

from repro.experiments import fig2


def test_fig2_route_diversity(benchmark, prepared):
    result = run_once(benchmark, fig2.run, prepared)
    publish(benchmark, result)
    assert result.metrics["fraction_multipath"] > 0.0
