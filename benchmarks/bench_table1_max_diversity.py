"""TAB1: quantiles of the per-AS maximum route diversity."""

from conftest import publish, run_once

from repro.experiments import table1


def test_table1_max_diversity(benchmark, prepared):
    result = run_once(benchmark, table1.run, prepared)
    publish(benchmark, result)
    assert result.metrics["fraction_ases_ge2"] > 0.0
