"""TAB4: prediction quality on held-out observation points (the >80% claim)."""

from conftest import publish, run_once

from repro.experiments import table4


def test_table4_validation_prediction(benchmark, prepared):
    result = run_once(benchmark, table4.run, prepared)
    publish(benchmark, result)
    assert result.metrics["validation_tie_break_or_better"] > 0.8
