"""PAR: supervised-pool speedup vs. sequential, emitting BENCH_parallel.json."""

from conftest import publish, run_once, write_results

from repro.experiments import parallelism


def test_parallel_speedup(benchmark, workload, workload_name):
    result = run_once(
        benchmark, parallelism.run, workload, worker_counts=(2, 4)
    )
    publish(benchmark, result)
    write_results("BENCH_parallel.json", result, workload_name)
    assert len(result.rows) == 3  # sequential + 2 worker counts
    assert result.metrics["cpu_count"] >= 1
    # Correctness is asserted inside the experiment (identical outcomes);
    # speedup itself is hardware-dependent and recorded, not asserted.
    assert result.metrics["seconds_sequential"] > 0
