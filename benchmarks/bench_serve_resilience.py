"""SERVE-RESILIENCE: the serve-path chaos campaign, emitting
BENCH_serve_resilience.json.

Unlike the throughput benchmark this one measures availability, not
speed: it drives a real ``repro serve --workers 2`` process tree through
hot reloads, a corrupted artifact, a ``kill -9``, an overload burst and
a SIGTERM drain, and records the contract numbers (dropped requests,
worker-replacement time, shed rate, admitted p99).
"""

from conftest import publish, run_once, write_results

from repro.experiments import serve_chaos


def test_serve_resilience(benchmark, workload_name):
    result = run_once(
        benchmark, serve_chaos.run, serve_chaos.ServeChaosConfig()
    )
    publish(benchmark, result)
    write_results("BENCH_serve_resilience.json", result, workload_name)
    # The availability contract, as recorded numbers.
    assert result.metrics["reload_dropped_requests"] == 0
    assert result.metrics["corrupt_reload_dropped_requests"] == 0
    assert result.metrics["degraded_observed"] == 1.0
    assert result.metrics["kill_recovery_seconds"] <= 15.0
    assert result.metrics["kill_window_successes"] > 0
    assert result.metrics["overload_shed"] > 0
    assert result.metrics["overload_admitted_p99_seconds"] <= 2.0
    assert result.metrics["drain_exit_code"] == 0
