"""CAMP: depeer-campaign throughput, emitting BENCH_campaign.json."""

from conftest import publish, run_once, write_results

from repro.experiments import campaigns


def test_campaign_throughput(benchmark, workload, workload_name):
    result = run_once(
        benchmark, campaigns.run, workload, max_scenarios=12,
        worker_counts=(2,),
    )
    publish(benchmark, result)
    write_results("BENCH_campaign.json", result, workload_name)
    assert len(result.rows) == 2  # sequential + 1 worker count
    assert result.metrics["scenarios"] > 0
    # Report equality across worker counts is asserted inside the
    # experiment; throughput is hardware-dependent and recorded, not
    # asserted.
    assert result.metrics["scenarios_per_minute"] > 0
    assert 0.0 <= result.metrics["quarantine_rate"] <= 1.0
