"""FIG8: distribution of quasi-routers per AS in the refined model."""

from conftest import publish, run_once

from repro.experiments import fig8


def test_fig8_quasi_router_distribution(benchmark, prepared):
    result = run_once(benchmark, fig8.run, prepared)
    publish(benchmark, result)
    assert result.metrics["single_router_fraction"] > 0.3
    assert result.metrics["max_quasi_routers"] >= 2
