"""OBS: tracing overhead on the engine, emitting BENCH_obs.json.

Quantifies the observability tax: the NullTracer default must stay
within a few percent of an uninstrumented engine, and the full JSONL
decision trace should cost a bounded, reported factor.
"""

from conftest import publish, run_once, write_results

from repro.experiments import obs


def test_trace_overhead(benchmark, workload, workload_name):
    result = run_once(benchmark, obs.run_trace_overhead, workload)
    publish(benchmark, result)
    write_results("BENCH_obs.json", result, workload_name)
    assert result.metrics["seconds_off"] > 0
    # Tracing must not change what the engine computes.
    assert result.metrics["messages"] > 0
    # The JSONL trace writes one event per decision; a run that recorded
    # nothing means the hooks silently disappeared.
    assert result.metrics["trace_bytes"] > 0
