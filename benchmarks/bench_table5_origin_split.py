"""TAB5: prediction for unobserved prefixes (origin-AS split)."""

from conftest import publish, run_once

from repro.experiments import table5


def test_table5_origin_split(benchmark, prepared):
    result = run_once(benchmark, table5.run, prepared)
    publish(benchmark, result)
    assert result.metrics["converged"] == 1.0
    assert result.metrics["validation_rib_out"] > 0.3
