"""LINT: static analyzer cost vs. model size, emitting BENCH_lint.json."""

import json
from pathlib import Path

from conftest import publish, run_once

from repro.experiments import scaling

RESULTS = Path(__file__).resolve().parent.parent / "results" / "BENCH_lint.json"


def test_lint_scaling(benchmark, workload):
    result = run_once(
        benchmark, scaling.run_lint, workload, factors=(0.25, 0.5, 1.0)
    )
    publish(benchmark, result)
    RESULTS.parent.mkdir(parents=True, exist_ok=True)
    RESULTS.write_text(
        json.dumps(
            {
                "experiment": result.experiment_id,
                "title": result.title,
                "headers": result.headers,
                "rows": result.rows,
                "metrics": result.metrics,
                "notes": result.notes,
            },
            indent=2,
            sort_keys=True,
        )
    )
    assert len(result.rows) == 3
    # static analysis must stay orders of magnitude cheaper than simulating
    assert all(result.metrics[f"seconds_x{f}"] < 60 for f in (0.25, 0.5, 1.0))
