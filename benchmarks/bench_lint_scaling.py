"""LINT: static analyzer cost vs. model size, emitting BENCH_lint.json."""

from conftest import publish, run_once, write_results

from repro.experiments import scaling


def test_lint_scaling(benchmark, workload, workload_name):
    result = run_once(
        benchmark, scaling.run_lint, workload, factors=(0.25, 0.5, 1.0)
    )
    publish(benchmark, result)
    write_results("BENCH_lint.json", result, workload_name)
    assert len(result.rows) == 3
    # static analysis must stay orders of magnitude cheaper than simulating
    assert all(result.metrics[f"seconds_x{f}"] < 60 for f in (0.25, 0.5, 1.0))
    # incremental re-certification after one policy install: headline
    # full/incremental columns present, bit-identical to a fresh pass,
    # touching only a sliver of the certificates, and >= 10x faster
    assert result.metrics["incremental_equal"] == 1.0
    assert result.metrics["invalidated_fraction"] < 0.5
    assert result.metrics["full_ms"] >= 10 * result.metrics["incremental_ms"]
