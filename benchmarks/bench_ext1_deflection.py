"""EXT1: data-plane vs control-plane AS paths in the ground truth."""

from conftest import publish, run_once

from repro.experiments import deflection


def test_ext1_deflection(benchmark, prepared):
    result = run_once(benchmark, deflection.run, prepared)
    publish(benchmark, result)
    assert result.metrics["loop_rate"] == 0.0
    assert result.metrics["agreement"] > 0.8
